package workloads

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"alloystack/internal/asstd"
	"alloystack/internal/asvm"
	"alloystack/internal/visor"
)

// This file holds the guest-tier benchmark programs: ASVM assembly
// standing in for the C and Python versions of the paper's benchmarks
// (compiled to WASM in the original). Guests do all computation inside
// their linear memory and reach the LibOS only through the WASI-style
// host calls, so intermediate data crosses the guest/host boundary as
// byte copies — exactly the string-transfer limitation §7.2 describes
// for non-Rust functions.
//
// Topology simplification for the guest tier (documented in DESIGN.md):
// the WordCount shuffle is 1:1 (mapper i feeds reducer i) and the
// histogram is 26 word-start buckets; ParallelSorting sorts chunks
// in place (shell sort) and verifies per-range order without the global
// sample-sort merge. Both keep the paper-relevant properties: WordCount
// has sparse intermediate data relative to its input, ParallelSorting
// dense; compute is real guest bytecode.

// payloadBase is where guests stage bulk data in linear memory.
const payloadBase = 65536

// guestPrelude declares memory, the common imports and helper functions
// shared by all guest programs.
const guestPrelude = asstd.WASISlotImports + `
memory 131072
data 0 "/INPUT.TXT"
data 16 "/INPUT.BIN"

; ensure(total): grow linear memory to at least total bytes.
func ensure 1 2 0
  local.get 0
  mem.size
  sub
  local.set 1
  local.get 1
  push 0
  gt
  jz ensured
  local.get 1
  mem.grow
  drop
ensured:
  ret
end

; fill(base, n): write the verifiable pattern byte (i*131+17)&255.
func fill 2 3 0
  push 0
  local.set 2
fillloop:
  local.get 2
  local.get 1
  lt
  jz filldone
  local.get 0
  local.get 2
  add
  local.get 2
  push 131
  mul
  push 17
  add
  push 255
  and
  store8
  local.get 2
  push 1
  add
  local.set 2
  jmp fillloop
filldone:
  ret
end

; xorsum(base, n) -> xor of all bytes (touches every byte).
func xorsum 2 4 1
  push 0
  local.set 2
  push 0
  local.set 3
xsloop:
  local.get 2
  local.get 1
  lt
  jz xsdone
  local.get 0
  local.get 2
  add
  load8
  local.get 3
  xor
  local.set 3
  local.get 2
  push 1
  add
  local.set 2
  jmp xsloop
xsdone:
  local.get 3
  ret
end

; recvedge(edge) -> size: receive the edge's payload at payloadBase.
func recvedge 1 2 1
  local.get 0
  hostcall slot_size
  local.set 1
  push 65536
  local.get 1
  add
  call ensure
  push 65536
  local.get 1
  local.get 0
  hostcall slot_recv
  drop
  local.get 1
  ret
end
`

// noopsGuestSrc: the empty function.
const noopsGuestSrc = guestPrelude + `
func run 2 2 1
  push 0
  ret
end
`

// pipeSendGuestSrc: run(instance, instances, size).
const pipeSendGuestSrc = guestPrelude + `
func run 3 3 1
  push 65536
  local.get 2
  add
  call ensure
  push 65536
  local.get 2
  call fill
  push 65536
  local.get 2
  push 0
  hostcall slot_send
  ret
end
`

// pipeRecvGuestSrc: run(instance, instances, size) — size is advisory.
const pipeRecvGuestSrc = guestPrelude + `
func run 3 4 1
  push 0
  call recvedge
  local.set 3
  push 65536
  local.get 3
  call xorsum
  ret
end
`

// chainGuestSrc: run(idx, length, size). Head fills and sends, interior
// links receive+forward, the tail receives and checks.
const chainGuestSrc = guestPrelude + `
func run 3 4 1
  local.get 0
  jz head
  ; interior or tail: receive
  push 0
  call recvedge
  local.set 3
  ; tail? idx+1 == length
  local.get 0
  push 1
  add
  local.get 1
  eq
  jnz tail
  ; forward
  push 65536
  local.get 3
  push 0
  hostcall slot_send
  ret
tail:
  push 65536
  local.get 3
  call xorsum
  ret
head:
  push 65536
  local.get 2
  add
  call ensure
  push 65536
  local.get 2
  call fill
  push 65536
  local.get 2
  push 0
  hostcall slot_send
  ret
end
`

// splitGuestSrc: run(n, pathOff, pathLen, align) — read the input file
// and scatter n align-multiple chunks to out edges 0..n-1.
const splitGuestSrc = guestPrelude + `
func run 4 10 1
  hostcall fs_mount
  drop
  local.get 1
  local.get 2
  hostcall path_open
  local.set 4          ; fd
  local.get 4
  push 0
  lt
  jnz fail
  local.get 4
  hostcall fd_size
  local.set 5          ; size
  push 65536
  local.get 5
  add
  call ensure
  push 0
  local.set 6          ; total read
readloop:
  local.get 6
  local.get 5
  lt
  jz sendchunks
  local.get 4
  push 65536
  local.get 6
  add
  local.get 5
  local.get 6
  sub
  hostcall fd_read
  local.set 7
  local.get 7
  push 1
  lt
  jnz fail
  local.get 6
  local.get 7
  add
  local.set 6
  jmp readloop
sendchunks:
  local.get 4
  hostcall fd_close
  drop
  ; chunk = (size / align / n) * align
  local.get 5
  local.get 3
  div
  local.get 0
  div
  local.get 3
  mul
  local.set 7          ; chunk bytes
  push 0
  local.set 8          ; i
chunkloop:
  local.get 8
  local.get 0
  lt
  jz alldone
  ; start = i * chunk
  local.get 8
  local.get 7
  mul
  local.set 9
  ; len = last ? size-start : chunk
  local.get 8
  push 1
  add
  local.get 0
  eq
  jz midchunk
  local.get 5
  local.get 9
  sub
  local.set 6
  jmp emit
midchunk:
  local.get 7
  local.set 6
emit:
  push 65536
  local.get 9
  add
  local.get 6
  local.get 8
  hostcall slot_send
  drop
  local.get 8
  push 1
  add
  local.set 8
  jmp chunkloop
alldone:
  push 0
  ret
fail:
  push 1
  halt
end
`

// wcMapGuestSrc: run(instance, instances) — histogram of word-start
// letters (26 u64 buckets at 256), sent to the paired reducer.
const wcMapGuestSrc = guestPrelude + `
func run 2 8 1
  push 0
  call recvedge
  local.set 2          ; size
  ; zero the histogram
  push 0
  local.set 3
zloop:
  local.get 3
  push 26
  lt
  jz count
  push 256
  local.get 3
  push 8
  mul
  add
  push 0
  store64
  local.get 3
  push 1
  add
  local.set 3
  jmp zloop
count:
  push 0
  local.set 3          ; i
  push 1
  local.set 5          ; prev-is-space
hloop:
  local.get 3
  local.get 2
  lt
  jz hsend
  push 65536
  local.get 3
  add
  load8
  local.set 4          ; c
  ; is-space = c==32 | c==10 | c==9 | c==13
  local.get 4
  push 32
  eq
  local.get 4
  push 10
  eq
  or
  local.get 4
  push 9
  eq
  or
  local.get 4
  push 13
  eq
  or
  local.set 6
  local.get 6
  jnz advance
  local.get 5
  jz advance
  ; word start: bucket[(c mod 26)]++
  push 256
  local.get 4
  push 26
  rem
  push 8
  mul
  add
  dup
  load64
  push 1
  add
  store64
advance:
  local.get 6
  local.set 5
  local.get 3
  push 1
  add
  local.set 3
  jmp hloop
hsend:
  push 256
  push 208
  push 0
  hostcall slot_send
  ret
end
`

// relayGuestSrc: run(instance, instances) — receive edge 0, send edge 0
// unchanged (the guest-tier reduce step and similar pass-through nodes).
const relayGuestSrc = guestPrelude + `
func run 2 3 1
  push 0
  call recvedge
  local.set 2
  push 65536
  local.get 2
  push 0
  hostcall slot_send
  ret
end
`

// wcMergeGuestSrc: run(n) — sum n 26-bucket histograms, return total.
const wcMergeGuestSrc = guestPrelude + `
func run 1 6 1
  ; zero accumulator at 512
  push 0
  local.set 2
azloop:
  local.get 2
  push 26
  lt
  jz gather
  push 512
  local.get 2
  push 8
  mul
  add
  push 0
  store64
  local.get 2
  push 1
  add
  local.set 2
  jmp azloop
gather:
  push 0
  local.set 1          ; j = edge index
edgeloop:
  local.get 1
  local.get 0
  lt
  jz total
  push 256
  push 208
  local.get 1
  hostcall slot_recv
  drop
  push 0
  local.set 2
addloop:
  local.get 2
  push 26
  lt
  jz nextedge
  push 512
  local.get 2
  push 8
  mul
  add
  dup
  load64
  push 256
  local.get 2
  push 8
  mul
  add
  load64
  add
  store64
  local.get 2
  push 1
  add
  local.set 2
  jmp addloop
nextedge:
  local.get 1
  push 1
  add
  local.set 1
  jmp edgeloop
total:
  push 0
  local.set 2
  push 0
  local.set 3
sumloop:
  local.get 2
  push 26
  lt
  jz done
  push 512
  local.get 2
  push 8
  mul
  add
  load64
  local.get 3
  add
  local.set 3
  local.get 2
  push 1
  add
  local.set 2
  jmp sumloop
done:
  local.get 3
  ret
end
`

// psSortGuestSrc: run(instance, instances) — shell-sort the received
// u64 chunk in place, then forward it.
const psSortGuestSrc = guestPrelude + `
func run 2 9 1
  push 0
  call recvedge
  local.set 2          ; bytes
  local.get 2
  push 8
  div
  local.set 3          ; n values
  ; shell sort: for gap=n/2; gap>0; gap/=2
  local.get 3
  push 2
  div
  local.set 4          ; gap
gaploop:
  local.get 4
  push 0
  gt
  jz sorted
  local.get 4
  local.set 5          ; i = gap
iloop:
  local.get 5
  local.get 3
  lt
  jz nextgap
  ; tmp = a[i]
  push 65536
  local.get 5
  push 8
  mul
  add
  load64
  local.set 6
  local.get 5
  local.set 7          ; j = i
jloop:
  local.get 7
  local.get 4
  ge
  jz jdone
  ; v = a[j-gap]
  push 65536
  local.get 7
  local.get 4
  sub
  push 8
  mul
  add
  load64
  local.set 8
  local.get 8
  local.get 6
  gt
  jz jdone
  ; a[j] = v
  push 65536
  local.get 7
  push 8
  mul
  add
  local.get 8
  store64
  local.get 7
  local.get 4
  sub
  local.set 7
  jmp jloop
jdone:
  ; a[j] = tmp
  push 65536
  local.get 7
  push 8
  mul
  add
  local.get 6
  store64
  local.get 5
  push 1
  add
  local.set 5
  jmp iloop
nextgap:
  local.get 4
  push 2
  div
  local.set 4
  jmp gaploop
sorted:
  push 65536
  local.get 2
  push 0
  hostcall slot_send
  ret
end
`

// psVerifyRelayGuestSrc: run(instance, instances) — assert the received
// chunk is sorted (signed compare, matching the guest sorter), forward.
const psVerifyRelayGuestSrc = guestPrelude + `
func run 2 6 1
  push 0
  call recvedge
  local.set 2
  local.get 2
  push 8
  div
  local.set 3
  push 1
  local.set 4          ; i
vloop:
  local.get 4
  local.get 3
  lt
  jz vok
  push 65536
  local.get 4
  push 8
  mul
  add
  load64
  push 65536
  local.get 4
  push 1
  sub
  push 8
  mul
  add
  load64
  lt
  jnz vfail
  local.get 4
  push 1
  add
  local.set 4
  jmp vloop
vok:
  push 65536
  local.get 2
  push 0
  hostcall slot_send
  ret
vfail:
  push 1
  halt
end
`

// psFinalGuestSrc: run(n) — drain n ranges, xor-summing every byte.
const psFinalGuestSrc = guestPrelude + `
func run 1 5 1
  push 0
  local.set 1          ; edge
  push 0
  local.set 2          ; acc
floop:
  local.get 1
  local.get 0
  lt
  jz fdone
  local.get 1
  call recvedge
  local.set 3
  push 65536
  local.get 3
  call xorsum
  local.get 2
  xor
  local.set 2
  local.get 1
  push 1
  add
  local.set 1
  jmp floop
fdone:
  local.get 2
  ret
end
`

// Assembled guest programs (shared, immutable after assembly).
var (
	NoopsGuest    = asvm.MustAssemble(noopsGuestSrc)
	PipeSendGuest = asvm.MustAssemble(pipeSendGuestSrc)
	PipeRecvGuest = asvm.MustAssemble(pipeRecvGuestSrc)
	ChainGuest    = asvm.MustAssemble(chainGuestSrc)
	SplitGuest    = asvm.MustAssemble(splitGuestSrc)
	WcMapGuest    = asvm.MustAssemble(wcMapGuestSrc)
	RelayGuest    = asvm.MustAssemble(relayGuestSrc)
	WcMergeGuest  = asvm.MustAssemble(wcMergeGuestSrc)
	PsSortGuest   = asvm.MustAssemble(psSortGuestSrc)
	PsVerifyRelay = asvm.MustAssemble(psVerifyRelayGuestSrc)
	PsFinalGuest  = asvm.MustAssemble(psFinalGuestSrc)
)

// GuestTier configures how guest programs execute for one language tier.
type GuestTier struct {
	// Language is the dag.FuncSpec language this tier serves.
	Language string
	// Engine and OverheadFactor model the runtime (see DESIGN.md S4).
	Engine         asvm.EngineKind
	OverheadFactor float64
	// RuntimeImage, when non-empty, is read through the LibOS fs before
	// each function executes (the Python-runtime init, S5).
	RuntimeImage string
	// InitCost is the calibrated runtime bootstrap beyond the image
	// read, scaled by the run's CostScale.
	InitCost time.Duration
}

// CTier models AlloyStack-C: AOT WASM on a Cranelift-class code
// generator (paper: Wasmtime ≈30% slower than WAVM).
func CTier() GuestTier {
	return GuestTier{Language: "c", Engine: asvm.EngineAOT, OverheadFactor: 1.3}
}

// PyTier models AlloyStack-Py: interpreted bytecode behind a runtime
// image load plus calibrated interpreter bootstrap (CPython's startup
// work beyond reading its image; paper §8.2 places AS-Py among the
// slowest starters).
func PyTier() GuestTier {
	return GuestTier{
		Language:       "python",
		Engine:         asvm.EngineInterp,
		OverheadFactor: 1.0,
		RuntimeImage:   PyRuntimePath,
		InitCost:       550 * time.Millisecond,
	}
}

// GuestProgram returns the guest program and entry arguments for a
// benchmark function, shared by the AlloyStack guest tiers and the Faasm
// baseline (which runs the identical bytecode on its own platform).
func GuestProgram(funcName string, ctx visor.FuncContext) (*asvm.Program, []int64, error) {
	base := funcName
	if i := strings.LastIndexByte(funcName, '-'); i > 0 {
		if _, err := strconv.Atoi(funcName[i+1:]); err == nil {
			base = funcName[:i]
		}
	}
	n := int64(ctx.ParamInt("instances", 1))
	switch base {
	case "noops":
		return NoopsGuest, []int64{int64(ctx.Instance), int64(ctx.Instances)}, nil
	case "pipe-send":
		return PipeSendGuest, []int64{int64(ctx.Instance), int64(ctx.Instances), ctx.ParamInt("size", 4096)}, nil
	case "pipe-recv":
		return PipeRecvGuest, []int64{int64(ctx.Instance), int64(ctx.Instances), ctx.ParamInt("size", 4096)}, nil
	case "chain":
		idx, err := chainIndex(funcName)
		if err != nil {
			return nil, nil, err
		}
		return ChainGuest, []int64{int64(idx), ctx.ParamInt("length", 2), ctx.ParamInt("size", 4096)}, nil
	case "wc-split":
		return SplitGuest, []int64{n, 0, 10, 1}, nil
	case "wc-map":
		return WcMapGuest, []int64{int64(ctx.Instance), int64(ctx.Instances)}, nil
	case "wc-reduce":
		return RelayGuest, []int64{int64(ctx.Instance), int64(ctx.Instances)}, nil
	case "wc-merge":
		return WcMergeGuest, []int64{n}, nil
	case "ps-split":
		return SplitGuest, []int64{n, 16, 10, 8}, nil
	case "ps-sort":
		return PsSortGuest, []int64{int64(ctx.Instance), int64(ctx.Instances)}, nil
	case "ps-merge":
		return PsVerifyRelay, []int64{int64(ctx.Instance), int64(ctx.Instances)}, nil
	case "ps-final":
		return PsFinalGuest, []int64{n}, nil
	}
	return nil, nil, fmt.Errorf("workloads: no guest program for %q", funcName)
}

// GuestEdges resolves a guest function's logical in/out edges to slot
// names (the guest-tier topology documented above).
func GuestEdges(funcName string, ctx visor.FuncContext) (in, out []string) {
	base := funcName
	if i := strings.LastIndexByte(funcName, '-'); i > 0 {
		if _, err := strconv.Atoi(funcName[i+1:]); err == nil {
			base = funcName[:i]
		}
	}
	n := int(ctx.ParamInt("instances", 1))
	switch base {
	case "pipe-send":
		out = []string{visor.Slot("pipe-send", 0, "pipe-recv", 0)}
	case "pipe-recv":
		in = []string{visor.Slot("pipe-send", 0, "pipe-recv", 0)}
	case "chain":
		idx, err := chainIndex(funcName)
		if err != nil {
			return nil, nil
		}
		if idx > 0 {
			in = []string{visor.Slot(fmt.Sprintf("chain-%d", idx-1), 0, funcName, 0)}
		}
		if idx < int(ctx.ParamInt("length", 2))-1 {
			out = []string{visor.Slot(funcName, 0, fmt.Sprintf("chain-%d", idx+1), 0)}
		}
	case "wc-split":
		out = make([]string, n)
		for i := range out {
			out[i] = visor.Slot("wc-split", 0, "wc-map", i)
		}
	case "wc-map":
		in = []string{visor.Slot("wc-split", 0, "wc-map", ctx.Instance)}
		out = []string{visor.Slot("wc-map", ctx.Instance, "wc-reduce", ctx.Instance)}
	case "wc-reduce":
		in = []string{visor.Slot("wc-map", ctx.Instance, "wc-reduce", ctx.Instance)}
		out = []string{visor.Slot("wc-reduce", ctx.Instance, "wc-merge", 0)}
	case "wc-merge":
		in = make([]string, n)
		for r := range in {
			in[r] = visor.Slot("wc-reduce", r, "wc-merge", 0)
		}
	case "ps-split":
		out = make([]string, n)
		for i := range out {
			out[i] = visor.Slot("ps-split", 0, "ps-sort", i)
		}
	case "ps-sort":
		in = []string{visor.Slot("ps-split", 0, "ps-sort", ctx.Instance)}
		out = []string{visor.Slot("ps-sort", ctx.Instance, "ps-merge", ctx.Instance)}
	case "ps-merge":
		in = []string{visor.Slot("ps-sort", ctx.Instance, "ps-merge", ctx.Instance)}
		out = []string{visor.Slot("ps-merge", ctx.Instance, "ps-final", 0)}
	case "ps-final":
		in = make([]string, n)
		for j := range in {
			in[j] = visor.Slot("ps-merge", j, "ps-final", 0)
		}
	}
	return in, out
}

// RegisterGuestTier installs the full guest benchmark suite for a tier.
func RegisterGuestTier(reg *visor.Registry, tier GuestTier) {
	mk := func(prog *asvm.Program, args func(visor.FuncContext) []int64,
		in, out func(visor.FuncContext) []string) visor.VMFunc {
		return visor.VMFunc{
			Prog:           prog,
			Entry:          "run",
			Args:           args,
			Engine:         tier.Engine,
			OverheadFactor: tier.OverheadFactor,
			RuntimeImage:   tier.RuntimeImage,
			InitCost:       tier.InitCost,
			InSlots:        in,
			OutSlots:       out,
		}
	}
	defaultArgs := func(ctx visor.FuncContext) []int64 {
		return []int64{int64(ctx.Instance), int64(ctx.Instances)}
	}
	noSlots := func(ctx visor.FuncContext) []string { return nil }

	reg.RegisterVM("noops", tier.Language, mk(NoopsGuest, defaultArgs, noSlots, noSlots))

	pipeSlot := func(ctx visor.FuncContext) []string {
		return []string{visor.Slot("pipe-send", 0, "pipe-recv", 0)}
	}
	sizeArgs := func(ctx visor.FuncContext) []int64 {
		return []int64{int64(ctx.Instance), int64(ctx.Instances), ctx.ParamInt("size", 4096)}
	}
	reg.RegisterVM("pipe-send", tier.Language, mk(PipeSendGuest, sizeArgs, noSlots, pipeSlot))
	reg.RegisterVM("pipe-recv", tier.Language, mk(PipeRecvGuest, sizeArgs, pipeSlot, noSlots))

	chainArgs := func(ctx visor.FuncContext) []int64 {
		idx, _ := chainIndex(ctx.Function)
		return []int64{int64(idx), ctx.ParamInt("length", 2), ctx.ParamInt("size", 4096)}
	}
	chainIn := func(ctx visor.FuncContext) []string {
		idx, _ := chainIndex(ctx.Function)
		if idx == 0 {
			return nil
		}
		return []string{visor.Slot(fmt.Sprintf("chain-%d", idx-1), 0, ctx.Function, 0)}
	}
	chainOut := func(ctx visor.FuncContext) []string {
		idx, _ := chainIndex(ctx.Function)
		if idx == int(ctx.ParamInt("length", 2))-1 {
			return nil
		}
		return []string{visor.Slot(ctx.Function, 0, fmt.Sprintf("chain-%d", idx+1), 0)}
	}
	reg.RegisterVM("chain", tier.Language, mk(ChainGuest, chainArgs, chainIn, chainOut))

	// WordCount: split -> map(xN, 1:1 shuffle) -> reduce(xN relay) -> merge.
	wcN := func(ctx visor.FuncContext) int { return int(ctx.ParamInt("instances", 1)) }
	reg.RegisterVM("wc-split", tier.Language, mk(SplitGuest,
		func(ctx visor.FuncContext) []int64 {
			return []int64{int64(wcN(ctx)), 0, 10, 1} // path "/INPUT.TXT" at data offset 0
		},
		noSlots,
		func(ctx visor.FuncContext) []string {
			out := make([]string, wcN(ctx))
			for i := range out {
				out[i] = visor.Slot("wc-split", 0, "wc-map", i)
			}
			return out
		}))
	reg.RegisterVM("wc-map", tier.Language, mk(WcMapGuest, defaultArgs,
		func(ctx visor.FuncContext) []string {
			return []string{visor.Slot("wc-split", 0, "wc-map", ctx.Instance)}
		},
		func(ctx visor.FuncContext) []string {
			return []string{visor.Slot("wc-map", ctx.Instance, "wc-reduce", ctx.Instance)}
		}))
	reg.RegisterVM("wc-reduce", tier.Language, mk(RelayGuest, defaultArgs,
		func(ctx visor.FuncContext) []string {
			return []string{visor.Slot("wc-map", ctx.Instance, "wc-reduce", ctx.Instance)}
		},
		func(ctx visor.FuncContext) []string {
			return []string{visor.Slot("wc-reduce", ctx.Instance, "wc-merge", 0)}
		}))
	reg.RegisterVM("wc-merge", tier.Language, mk(WcMergeGuest,
		func(ctx visor.FuncContext) []int64 { return []int64{int64(wcN(ctx))} },
		func(ctx visor.FuncContext) []string {
			in := make([]string, wcN(ctx))
			for r := range in {
				in[r] = visor.Slot("wc-reduce", r, "wc-merge", 0)
			}
			return in
		},
		noSlots))

	// ParallelSorting: split -> sort(xN) -> verify-relay(xN) -> final.
	reg.RegisterVM("ps-split", tier.Language, mk(SplitGuest,
		func(ctx visor.FuncContext) []int64 {
			return []int64{int64(wcN(ctx)), 16, 10, 8} // path "/INPUT.BIN" at data offset 16
		},
		noSlots,
		func(ctx visor.FuncContext) []string {
			out := make([]string, wcN(ctx))
			for i := range out {
				out[i] = visor.Slot("ps-split", 0, "ps-sort", i)
			}
			return out
		}))
	reg.RegisterVM("ps-sort", tier.Language, mk(PsSortGuest, defaultArgs,
		func(ctx visor.FuncContext) []string {
			return []string{visor.Slot("ps-split", 0, "ps-sort", ctx.Instance)}
		},
		func(ctx visor.FuncContext) []string {
			return []string{visor.Slot("ps-sort", ctx.Instance, "ps-merge", ctx.Instance)}
		}))
	reg.RegisterVM("ps-merge", tier.Language, mk(PsVerifyRelay, defaultArgs,
		func(ctx visor.FuncContext) []string {
			return []string{visor.Slot("ps-sort", ctx.Instance, "ps-merge", ctx.Instance)}
		},
		func(ctx visor.FuncContext) []string {
			return []string{visor.Slot("ps-merge", ctx.Instance, "ps-final", 0)}
		}))
	reg.RegisterVM("ps-final", tier.Language, mk(PsFinalGuest,
		func(ctx visor.FuncContext) []int64 { return []int64{int64(wcN(ctx))} },
		func(ctx visor.FuncContext) []string {
			in := make([]string, wcN(ctx))
			for j := range in {
				in[j] = visor.Slot("ps-merge", j, "ps-final", 0)
			}
			return in
		},
		noSlots))
}

// RegisterAll installs the native tier plus both guest tiers.
func RegisterAll(reg *visor.Registry) {
	RegisterNative(reg)
	RegisterGuestTier(reg, CTier())
	RegisterGuestTier(reg, PyTier())
}
