// Package workloads implements the paper's benchmark applications in all
// three language tiers (§8.1):
//
//	synthetic:  no-ops, http-server, pipe
//	real-world: FunctionChain (ServerlessBench), WordCount (vSwarm,
//	            MapReduce-style), ParallelSorting (sample sort)
//
// The native tier (≈Rust in the paper) is ordinary Go running on as-std;
// the C and Python tiers are ASVM guest programs executed through the
// WASI adaptation layer (AOT engine for C, interpreter + runtime image
// for Python). Every application moves intermediate data through the
// unified data plane (internal/xfer): AsBuffer reference passing by
// default, the LibOS file spill when reference passing is disabled (the
// Figure 14 ablation's file-mediated path, which matches AWS Step
// Functions' recommended pattern), or whatever transport the run
// selects — the workload code is identical either way.
package workloads

import (
	"fmt"

	"alloystack/internal/asstd"
	"alloystack/internal/visor"
	"alloystack/internal/xfer"
)

// tp resolves the function instance's data plane: the visor installs a
// transport on every env it builds; envs created outside the visor
// (direct tests, examples) fall back to a private transport derived
// from the __refpass parameter, cached on the env for later calls.
func tp(env *asstd.Env, ctx visor.FuncContext) asstd.Transport {
	if t := env.Transport(); t != nil {
		return t
	}
	kind := xfer.KindRefpass
	if ctx.Param("__refpass", "1") != "1" {
		kind = xfer.KindFile
	}
	t, err := xfer.New(kind, xfer.Config{Env: env})
	if err != nil {
		// Unreachable: both fallback kinds only need the non-nil env.
		panic(fmt.Sprintf("workloads: fallback transport: %v", err))
	}
	env.SetTransport(t)
	return t
}

// refPassing reports whether this instance moves intermediate data by
// reference. FunctionChain consults it to forward buffers in place (a
// slot re-registration instead of any Send), the paper's chained
// zero-copy pattern.
func refPassing(env *asstd.Env, ctx visor.FuncContext) bool {
	return tp(env, ctx).Kind() == xfer.KindRefpass
}
