// Package workloads implements the paper's benchmark applications in all
// three language tiers (§8.1):
//
//	synthetic:  no-ops, http-server, pipe
//	real-world: FunctionChain (ServerlessBench), WordCount (vSwarm,
//	            MapReduce-style), ParallelSorting (sample sort)
//
// The native tier (≈Rust in the paper) is ordinary Go running on as-std;
// the C and Python tiers are ASVM guest programs executed through the
// WASI adaptation layer (AOT engine for C, interpreter + runtime image
// for Python). Every application transfers intermediate data through
// AsBuffer slots by default and through LibOS files when reference
// passing is disabled — the Figure 14 ablation's file-mediated path,
// which matches AWS Step Functions' recommended pattern.
package workloads

import (
	"fmt"
	"hash/fnv"

	"alloystack/internal/asstd"
	"alloystack/internal/visor"
)

// refPassing reports whether this invocation uses reference passing.
func refPassing(ctx visor.FuncContext) bool {
	return ctx.Param("__refpass", "1") == "1"
}

// xferPath maps a slot name onto an 8.3-safe file path for the
// file-mediated fallback.
func xferPath(slot string) string {
	h := fnv.New32a()
	h.Write([]byte(slot))
	return fmt.Sprintf("/X%07X.DAT", h.Sum32()&0xFFFFFFF)
}

// send transfers data downstream under slot. With reference passing the
// bytes land in a shared AsBuffer (one write, zero copies downstream);
// without it they are written to a LibOS file and re-read by the
// receiver — the double copy the paper's design eliminates.
func send(env *asstd.Env, ctx visor.FuncContext, slot string, data []byte) error {
	if refPassing(ctx) {
		b, err := asstd.NewBuffer(env, slot, uint64(len(data)))
		if err != nil {
			return err
		}
		copy(b.Bytes(), data)
		return nil
	}
	if err := asstd.MountFS(env); err != nil {
		return err
	}
	return asstd.WriteFile(env, xferPath(slot), data)
}

// sendBuffer registers an already-filled AsBuffer under slot, or spills
// it to a file when reference passing is off. The buffer-producing path
// lets compute write its output in place (true zero-copy).
func sendBuffer(env *asstd.Env, ctx visor.FuncContext, b *asstd.Buffer) error {
	if refPassing(ctx) {
		return nil // the buffer is already registered under its slot
	}
	if err := asstd.MountFS(env); err != nil {
		return err
	}
	if err := asstd.WriteFile(env, xferPath(b.Slot()), b.Bytes()); err != nil {
		return err
	}
	return b.Free()
}

// newOutput allocates the output buffer for slot. Compute writes into it
// directly; finish with sendBuffer.
func newOutput(env *asstd.Env, ctx visor.FuncContext, slot string, size uint64) (*asstd.Buffer, error) {
	return asstd.NewBuffer(env, slot, size)
}

// recv obtains the intermediate data registered under slot. With
// reference passing the returned slice aliases the sender's buffer (and
// the cleanup closure frees it); otherwise the bytes are read back from
// the spill file.
func recv(env *asstd.Env, ctx visor.FuncContext, slot string) ([]byte, func() error, error) {
	if refPassing(ctx) {
		b, err := asstd.FromSlot(env, slot)
		if err != nil {
			return nil, nil, err
		}
		return b.Bytes(), b.Free, nil
	}
	if err := asstd.MountFS(env); err != nil {
		return nil, nil, err
	}
	data, err := asstd.ReadFile(env, xferPath(slot))
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
