package workloads

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// ---- WordCount serialization --------------------------------------------
//
// Count tables travel between map, reduce and merge as repeated records:
// u32 word length, word bytes, u64 count.

// EncodeCounts serialises a count table with deterministic word order.
func EncodeCounts(counts map[string]uint64) []byte {
	words := make([]string, 0, len(counts))
	size := 0
	for w := range counts {
		words = append(words, w)
		size += 4 + len(w) + 8
	}
	sort.Strings(words)
	out := make([]byte, 0, size)
	var scratch [8]byte
	for _, w := range words {
		binary.LittleEndian.PutUint32(scratch[:4], uint32(len(w)))
		out = append(out, scratch[:4]...)
		out = append(out, w...)
		binary.LittleEndian.PutUint64(scratch[:], counts[w])
		out = append(out, scratch[:]...)
	}
	return out
}

// DecodeCountsInto merges a serialised count table into dst.
func DecodeCountsInto(dst map[string]uint64, data []byte) error {
	for off := 0; off < len(data); {
		if off+4 > len(data) {
			return errors.New("workloads: truncated count record header")
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if n < 0 || off+n+8 > len(data) {
			return fmt.Errorf("workloads: truncated count record (len %d)", n)
		}
		word := string(data[off : off+n])
		off += n
		dst[word] += binary.LittleEndian.Uint64(data[off:])
		off += 8
	}
	return nil
}

// CountWords tallies whitespace-separated tokens.
func CountWords(text []byte) map[string]uint64 {
	counts := make(map[string]uint64)
	start := -1
	for i := 0; i <= len(text); i++ {
		isSpace := i == len(text) || text[i] == ' ' || text[i] == '\n' ||
			text[i] == '\t' || text[i] == '\r'
		if isSpace {
			if start >= 0 {
				counts[string(text[start:i])]++
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return counts
}

// WordShard assigns a word to one of n reducers.
func WordShard(word string, n int) int {
	var h uint32 = 2166136261
	for i := 0; i < len(word); i++ {
		h ^= uint32(word[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// SplitTextChunks cuts text into n chunks at whitespace boundaries.
func SplitTextChunks(text []byte, n int) [][]byte {
	if n <= 1 {
		return [][]byte{text}
	}
	chunks := make([][]byte, 0, n)
	chunkSize := len(text) / n
	start := 0
	for i := 0; i < n; i++ {
		if i == n-1 {
			chunks = append(chunks, text[start:])
			break
		}
		end := start + chunkSize
		if end >= len(text) {
			end = len(text)
		}
		// Advance to the next whitespace so no word is split.
		for end < len(text) && text[end] != ' ' && text[end] != '\n' {
			end++
		}
		chunks = append(chunks, text[start:end])
		start = end
	}
	return chunks
}

// ---- ParallelSorting helpers ----------------------------------------------

// BytesToU64s reinterprets little-endian bytes as uint64 values (copy).
func BytesToU64s(b []byte) []uint64 {
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

// U64sToBytes serialises values little-endian into a fresh slice.
func U64sToBytes(vals []uint64) []byte {
	out := make([]byte, len(vals)*8)
	putU64s(out, vals)
	return out
}

// putU64s serialises values into dst (len(dst) >= 8*len(vals)).
func putU64s(dst []byte, vals []uint64) {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(dst[i*8:], v)
	}
}

// PickPivots samples vals and returns n-1 splitters dividing the value
// space into n roughly equal ranges.
func PickPivots(vals []uint64, n int) []uint64 {
	if n <= 1 {
		return nil
	}
	sampleSize := 1024
	if sampleSize > len(vals) {
		sampleSize = len(vals)
	}
	sample := make([]uint64, sampleSize)
	if sampleSize > 0 {
		step := len(vals) / sampleSize
		if step == 0 {
			step = 1
		}
		for i := 0; i < sampleSize; i++ {
			sample[i] = vals[(i*step)%len(vals)]
		}
		sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	}
	pivots := make([]uint64, n-1)
	for i := 1; i < n; i++ {
		if sampleSize == 0 {
			pivots[i-1] = 0
			continue
		}
		pivots[i-1] = sample[i*sampleSize/n]
	}
	return pivots
}

// RangeOf returns which pivot range v falls into (0..len(pivots)).
func RangeOf(v uint64, pivots []uint64) int {
	lo, hi := 0, len(pivots)
	for lo < hi {
		mid := (lo + hi) / 2
		if v < pivots[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// MergeSortedRuns merges pre-sorted runs into one sorted slice.
func MergeSortedRuns(runs [][]uint64) []uint64 {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]uint64, 0, total)
	idx := make([]int, len(runs))
	for len(out) < total {
		best := -1
		var bestVal uint64
		for i, r := range runs {
			if idx[i] >= len(r) {
				continue
			}
			if best == -1 || r[idx[i]] < bestVal {
				best = i
				bestVal = r[idx[i]]
			}
		}
		out = append(out, bestVal)
		idx[best]++
	}
	return out
}

// EncodePivotChunk prepends the pivot header to a value chunk:
// u32 pivot count, pivots, then the chunk bytes.
func EncodePivotChunk(pivots []uint64, chunk []byte) []byte {
	out := make([]byte, 4+len(pivots)*8+len(chunk))
	binary.LittleEndian.PutUint32(out, uint32(len(pivots)))
	putU64s(out[4:], pivots)
	copy(out[4+len(pivots)*8:], chunk)
	return out
}

// DecodePivotChunk splits a pivot-headed chunk back apart. The returned
// chunk aliases data.
func DecodePivotChunk(data []byte) (pivots []uint64, chunk []byte, err error) {
	if len(data) < 4 {
		return nil, nil, errors.New("workloads: truncated pivot header")
	}
	n := int(binary.LittleEndian.Uint32(data))
	if len(data) < 4+n*8 {
		return nil, nil, errors.New("workloads: truncated pivot table")
	}
	pivots = BytesToU64s(data[4 : 4+n*8])
	return pivots, data[4+n*8:], nil
}
