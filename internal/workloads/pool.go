package workloads

import (
	"io"

	"alloystack/internal/blockdev"
	"alloystack/internal/core"
	"alloystack/internal/dag"
	"alloystack/internal/pool"
)

// PoolModules is the as-libos module set warm-pool templates preload:
// everything the benchmark functions touch except socket (pooled clones
// cannot share a NIC address, so socket workflows boot cold).
var PoolModules = []string{"mm", "fdtab", "fatfs", "stdio", "time"}

// PoolSpecFor builds a warm-pool template spec for a workflow, or
// reports false when the workflow does not benefit from pooling (no
// guest runtime image to warm) or cannot be pooled (needs the network).
// The template owns a fresh disk image staged exactly like a cold
// invocation's — input files plus the Python runtime — so clones adopt
// a filesystem indistinguishable from a cold boot's.
func PoolSpecFor(w *dag.Workflow, inputSize int64, costScale float64) (pool.Spec, bool) {
	needsPy := false
	for _, f := range w.Functions {
		if f.Language == "python" {
			needsPy = true
		}
		if f.Param("transfer", "") == "net" {
			return pool.Spec{}, false
		}
	}
	if !needsPy {
		// Nothing to warm: native/C tiers have no runtime image, so a
		// pooled clone would only save the module-load microseconds.
		return pool.Spec{}, false
	}

	var (
		img blockdev.Device
		err error
	)
	switch inputPathFor(w) {
	case TextInputPath:
		img, err = BuildTextImage(inputSize, true)
	case BinInputPath:
		img, err = BuildBinImage(inputSize, true)
	default:
		img, err = BuildEmptyImage(true)
	}
	if err != nil {
		return pool.Spec{}, false
	}

	tier := PyTier()
	return pool.Spec{
		Workflow: w.Name,
		Core: core.Options{
			DiskImage: img,
			Stdout:    io.Discard,
			OnDemand:  true,
			CostScale: costScale,
		},
		Modules:  PoolModules,
		Runtimes: []pool.Runtime{{Image: tier.RuntimeImage, InitCost: tier.InitCost}},
	}, true
}

// inputPathFor reports which staged input file the workflow reads.
func inputPathFor(w *dag.Workflow) string {
	for _, f := range w.Functions {
		switch f.Param("input", "") {
		case TextInputPath:
			return TextInputPath
		case BinInputPath:
			return BinInputPath
		}
	}
	return ""
}
