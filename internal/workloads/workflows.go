package workloads

import (
	"fmt"
	"math/rand"

	"alloystack/internal/blockdev"
	"alloystack/internal/dag"
	"alloystack/internal/fatfs"
	"alloystack/internal/ramfs"
)

// Input file names inside the WFD filesystem (8.3, FAT-safe).
const (
	TextInputPath = "/INPUT.TXT"
	BinInputPath  = "/INPUT.BIN"
	// PyRuntimePath is the Python-tier runtime image (substitution S5:
	// the CPython-on-WASM image whose file-read dominates AS-Py init).
	PyRuntimePath = "/PYRT.BIN"
	// PyRuntimeSize approximates the CPython WASM build (scaled).
	PyRuntimeSize = 4 << 20
)

// NoOps builds the no-ops workflow (cold-start benchmarks).
func NoOps() *dag.Workflow {
	return &dag.Workflow{
		Name:      "no-ops",
		Functions: []dag.FuncSpec{{Name: "noops"}},
	}
}

// HTTPServer builds the http-server workflow.
func HTTPServer(port uint16, requests int) *dag.Workflow {
	return &dag.Workflow{
		Name: "http-server",
		Functions: []dag.FuncSpec{{
			Name: "httpserver",
			Params: map[string]string{
				"port":     fmt.Sprint(port),
				"requests": fmt.Sprint(requests),
			},
		}},
	}
}

// Pipe builds the two-function pipe workflow moving size bytes.
func Pipe(size int64, language string) *dag.Workflow {
	params := map[string]string{"size": fmt.Sprint(size)}
	return &dag.Workflow{
		Name: "pipe",
		Functions: []dag.FuncSpec{
			{Name: "pipe-send", Params: params, Language: language},
			{Name: "pipe-recv", DependsOn: []string{"pipe-send"}, Params: params, Language: language},
		},
	}
}

// FunctionChain builds a chain of length functions forwarding size bytes
// (the "x functions" axis of Figures 12g-i and 13).
func FunctionChain(length int, size int64, language string) *dag.Workflow {
	params := map[string]string{
		"size":   fmt.Sprint(size),
		"length": fmt.Sprint(length),
	}
	w := dag.Chain("function-chain", length, func(i int) string {
		return fmt.Sprintf("chain-%d", i)
	}, params)
	for i := range w.Functions {
		w.Functions[i].Language = language
	}
	return w
}

// WordCount builds the MapReduce word-count workflow with the given
// parallel instance count per stage.
func WordCount(instances int, language string) *dag.Workflow {
	params := map[string]string{
		"instances": fmt.Sprint(instances),
		"input":     TextInputPath,
	}
	return &dag.Workflow{
		Name: "word-count",
		Functions: []dag.FuncSpec{
			{Name: "wc-split", Params: params, Language: language},
			{Name: "wc-map", DependsOn: []string{"wc-split"}, Instances: instances, Params: params, Language: language},
			{Name: "wc-reduce", DependsOn: []string{"wc-map"}, Instances: instances, Params: params, Language: language},
			{Name: "wc-merge", DependsOn: []string{"wc-reduce"}, Params: params, Language: language},
		},
	}
}

// ParallelSorting builds the sample-sort workflow.
func ParallelSorting(instances int, language string) *dag.Workflow {
	params := map[string]string{
		"instances": fmt.Sprint(instances),
		"input":     BinInputPath,
	}
	return &dag.Workflow{
		Name: "parallel-sorting",
		Functions: []dag.FuncSpec{
			{Name: "ps-split", Params: params, Language: language},
			{Name: "ps-sort", DependsOn: []string{"ps-split"}, Instances: instances, Params: params, Language: language},
			{Name: "ps-merge", DependsOn: []string{"ps-sort"}, Instances: instances, Params: params, Language: language},
			{Name: "ps-final", DependsOn: []string{"ps-merge"}, Params: params, Language: language},
		},
	}
}

// ---- input generation ------------------------------------------------------

// wordPool is the vocabulary for synthetic text.
var wordPool = func() []string {
	out := make([]string, 0, 512)
	for i := 0; i < 512; i++ {
		n := 3 + i%8
		w := make([]byte, n)
		for j := range w {
			w[j] = byte('a' + (i*7+j*13)%26)
		}
		out = append(out, string(w))
	}
	return out
}()

// GenText produces ~size bytes of whitespace-separated words.
func GenText(size int64, seed int64) []byte {
	r := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, size+16)
	for int64(len(out)) < size {
		out = append(out, wordPool[r.Intn(len(wordPool))]...)
		if r.Intn(12) == 0 {
			out = append(out, '\n')
		} else {
			out = append(out, ' ')
		}
	}
	return out[:size]
}

// GenU64s produces size bytes of random little-endian uint64 values.
func GenU64s(size int64, seed int64) []byte {
	r := rand.New(rand.NewSource(seed))
	n := size / 8
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = r.Uint64()
	}
	return U64sToBytes(vals)
}

// imageCapacity sizes a FAT volume comfortably above the payload.
func imageCapacity(payload int64) int64 {
	c := payload*2 + (8 << 20)
	return c
}

// BuildTextImage creates a FAT disk image holding INPUT.TXT of the given
// size (WordCount's input). withPyRuntime adds the Python runtime image.
func BuildTextImage(size int64, withPyRuntime bool) (blockdev.Device, error) {
	return buildImage(TextInputPath, GenText(size, 42), withPyRuntime)
}

// BuildBinImage creates a FAT disk image holding INPUT.BIN of the given
// size (ParallelSorting's input).
func BuildBinImage(size int64, withPyRuntime bool) (blockdev.Device, error) {
	return buildImage(BinInputPath, GenU64s(size, 42), withPyRuntime)
}

// BuildEmptyImage creates a formatted image with only the optional
// Python runtime (FunctionChain needs no file input).
func BuildEmptyImage(withPyRuntime bool) (blockdev.Device, error) {
	return buildImage("", nil, withPyRuntime)
}

// FatfsReadShapeBps caps workload disk-image read throughput so the
// LibOS filesystem lands at the paper's Table 4 relationship (rust-fatfs
// 362 MB/s read, ≈3.7x slower than ext4). Our from-scratch fatfs on RAM
// is otherwise faster than the modelled ext4, which would invert the
// WordCount result of Figure 12. Set to 0 to measure the unshaped stack.
var FatfsReadShapeBps = int64(520) << 20

// ShapeImage applies the calibrated fatfs read cap to a device.
func ShapeImage(dev blockdev.Device) blockdev.Device {
	if FatfsReadShapeBps <= 0 {
		return dev
	}
	return &blockdev.Shaped{Inner: dev, ReadBytesPerSecond: FatfsReadShapeBps}
}

func buildImage(path string, payload []byte, withPyRuntime bool) (blockdev.Device, error) {
	capacity := imageCapacity(int64(len(payload)))
	if withPyRuntime {
		capacity += 2 * PyRuntimeSize
	}
	var dev blockdev.Device = blockdev.NewMemDisk(capacity)
	dev = ShapeImage(dev)
	fs, err := fatfs.Format(dev, fatfs.MkfsOptions{})
	if err != nil {
		return nil, err
	}
	if path != "" {
		if err := fs.WriteFile(path, payload); err != nil {
			return nil, err
		}
	}
	if withPyRuntime {
		if err := fs.WriteFile(PyRuntimePath, GenText(PyRuntimeSize, 7)); err != nil {
			return nil, err
		}
	}
	return dev, nil
}

// BuildTextRamfs stages INPUT.TXT in a ramfs (Figure 16 mode).
func BuildTextRamfs(size int64, withPyRuntime bool) *ramfs.FS {
	fs := ramfs.New()
	fs.WriteFile(TextInputPath, GenText(size, 42))
	if withPyRuntime {
		fs.WriteFile(PyRuntimePath, GenText(PyRuntimeSize, 7))
	}
	return fs
}

// BuildBinRamfs stages INPUT.BIN in a ramfs (Figure 16 mode).
func BuildBinRamfs(size int64, withPyRuntime bool) *ramfs.FS {
	fs := ramfs.New()
	fs.WriteFile(BinInputPath, GenU64s(size, 42))
	if withPyRuntime {
		fs.WriteFile(PyRuntimePath, GenText(PyRuntimeSize, 7))
	}
	return fs
}
