package mem

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func TestForkSharesPagesUntilWrite(t *testing.T) {
	parent := NewSpace(0)
	base, err := parent.Map(4 * PageSize)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 2*PageSize)
	if err := parent.WriteAt(nil, base, payload); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}

	child := parent.Fork()
	if !parent.Sealed() {
		t.Fatal("Fork must seal the template")
	}
	if child.SharedBytes() != 4*PageSize {
		t.Fatalf("SharedBytes = %d, want %d", child.SharedBytes(), 4*PageSize)
	}

	// The clone sees the template's snapshot.
	got := make([]byte, len(payload))
	if err := child.ReadAt(nil, base, got); err != nil {
		t.Fatalf("child ReadAt: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("child does not see template pages")
	}
	if child.CowBreaks() != 0 {
		t.Fatalf("reads must not break COW, breaks = %d", child.CowBreaks())
	}

	// A child write privatises the region and leaves the template intact.
	if err := child.WriteAt(nil, base, []byte{0xCD}); err != nil {
		t.Fatalf("child WriteAt: %v", err)
	}
	if child.CowBreaks() != 1 {
		t.Fatalf("CowBreaks = %d, want 1", child.CowBreaks())
	}
	if child.SharedBytes() != 0 {
		t.Fatalf("SharedBytes after break = %d, want 0", child.SharedBytes())
	}
	tpl := make([]byte, 1)
	if err := parent.ReadAt(nil, base, tpl); err != nil {
		t.Fatalf("parent ReadAt: %v", err)
	}
	if tpl[0] != 0xAB {
		t.Fatalf("template mutated by child write: %#x", tpl[0])
	}
}

func TestForkClonesAreIndependent(t *testing.T) {
	parent := NewSpace(0)
	base, err := parent.Map(PageSize)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if err := parent.WriteAt(nil, base, []byte{1}); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}

	a := parent.Fork()
	b := parent.Fork()
	if err := a.WriteAt(nil, base, []byte{2}); err != nil {
		t.Fatalf("a WriteAt: %v", err)
	}
	var got [1]byte
	if err := b.ReadAt(nil, base, got[:]); err != nil {
		t.Fatalf("b ReadAt: %v", err)
	}
	if got[0] != 1 {
		t.Fatalf("sibling clone sees other clone's write: %d", got[0])
	}
}

func TestSealedSpaceRejectsMutation(t *testing.T) {
	s := NewSpace(0)
	base, err := s.Map(PageSize)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	s.Seal()

	if err := s.WriteAt(nil, base, []byte{1}); !errors.Is(err, ErrSealed) {
		t.Fatalf("WriteAt on sealed = %v, want ErrSealed", err)
	}
	if _, err := s.Slice(nil, base, 8, true); !errors.Is(err, ErrSealed) {
		t.Fatalf("writable Slice on sealed = %v, want ErrSealed", err)
	}
	if _, err := s.Map(PageSize); !errors.Is(err, ErrSealed) {
		t.Fatalf("Map on sealed = %v, want ErrSealed", err)
	}
	if err := s.Unmap(base); !errors.Is(err, ErrSealed) {
		t.Fatalf("Unmap on sealed = %v, want ErrSealed", err)
	}
	if err := s.SetKey(base, PageSize, 3); !errors.Is(err, ErrSealed) {
		t.Fatalf("SetKey on sealed = %v, want ErrSealed", err)
	}
	// Reads of present pages stay legal.
	if _, err := s.Slice(nil, base, 8, false); err != nil {
		t.Fatalf("read Slice on sealed: %v", err)
	}
}

func TestForkKeysAreIndependent(t *testing.T) {
	parent := NewSpace(0)
	base, err := parent.Map(PageSize)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if err := parent.SetKey(base, PageSize, 5); err != nil {
		t.Fatalf("SetKey: %v", err)
	}
	child := parent.Fork()
	if err := child.SetKey(base, PageSize, 9); err != nil {
		t.Fatalf("child SetKey: %v", err)
	}
	pk, err := parent.KeyAt(base)
	if err != nil {
		t.Fatalf("parent KeyAt: %v", err)
	}
	ck, err := child.KeyAt(base)
	if err != nil {
		t.Fatalf("child KeyAt: %v", err)
	}
	if pk != 5 || ck != 9 {
		t.Fatalf("keys parent=%d child=%d, want 5 and 9", pk, ck)
	}
}

func TestForkLazyRegionFaultBreaksCOW(t *testing.T) {
	parent := NewSpace(0)
	fill := func(addr uint64, data []byte) error {
		for i := range data {
			data[i] = 0x42
		}
		return nil
	}
	base, err := parent.MapLazy(2*PageSize, fill)
	if err != nil {
		t.Fatalf("MapLazy: %v", err)
	}
	// Fault the first page in before the snapshot; leave the second cold.
	var one [1]byte
	if err := parent.ReadAt(nil, base, one[:]); err != nil {
		t.Fatalf("parent fault: %v", err)
	}

	child := parent.Fork()
	// Reading the already-present page shares the template's copy.
	if err := child.ReadAt(nil, base, one[:]); err != nil {
		t.Fatalf("child read present: %v", err)
	}
	if child.CowBreaks() != 0 {
		t.Fatalf("present-page read broke COW: %d", child.CowBreaks())
	}
	// Faulting the cold page must privatise the region first so the fill
	// never touches the template's shared array.
	if err := child.ReadAt(nil, base+PageSize, one[:]); err != nil {
		t.Fatalf("child fault: %v", err)
	}
	if one[0] != 0x42 {
		t.Fatalf("fault fill = %#x, want 0x42", one[0])
	}
	if child.CowBreaks() != 1 {
		t.Fatalf("CowBreaks = %d, want 1", child.CowBreaks())
	}
	// The sealed template refuses to fault its own cold page.
	if err := parent.ReadAt(nil, base+PageSize, one[:]); !errors.Is(err, ErrSealed) {
		t.Fatalf("sealed fault fill = %v, want ErrSealed", err)
	}
}

func TestForkChildCanMapBeyondTemplate(t *testing.T) {
	parent := NewSpace(0)
	tbase, err := parent.Map(PageSize)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	child := parent.Fork()
	cbase, err := child.Map(4 * PageSize)
	if err != nil {
		t.Fatalf("child Map: %v", err)
	}
	if cbase <= tbase {
		t.Fatalf("child mapping %#x overlaps inherited layout at %#x", cbase, tbase)
	}
	if err := child.WriteAt(nil, cbase, []byte{7}); err != nil {
		t.Fatalf("child WriteAt own region: %v", err)
	}
	if child.CowBreaks() != 0 {
		t.Fatalf("write to own region broke COW: %d", child.CowBreaks())
	}
}

func TestForkConcurrentClones(t *testing.T) {
	parent := NewSpace(0)
	base, err := parent.Map(8 * PageSize)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if err := parent.WriteAt(nil, base, bytes.Repeat([]byte{0x11}, 8*PageSize)); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := parent.Fork()
			buf := make([]byte, PageSize)
			if err := c.ReadAt(nil, base, buf); err != nil {
				t.Errorf("clone read: %v", err)
				return
			}
			if err := c.WriteAt(nil, base+uint64(i)*PageSize, []byte{byte(i)}); err != nil {
				t.Errorf("clone write: %v", err)
			}
		}(i)
	}
	wg.Wait()
	var got [1]byte
	if err := parent.ReadAt(nil, base, got[:]); err != nil || got[0] != 0x11 {
		t.Fatalf("template mutated: byte=%#x err=%v", got[0], err)
	}
}
