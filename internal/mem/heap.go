package mem

import (
	"errors"
	"fmt"
	"sync"
)

// Heap is a first-fit free-list allocator over a region of a Space,
// modelled on the linked_list_allocator the paper uses as the WFD's
// default memory allocator: an address-ordered free list with block
// splitting on allocation and coalescing on free. Allocating a fresh heap
// per function makes crash recovery a matter of dropping the heap unit,
// which is the paper's fault-isolation story inside a WFD.
type Heap struct {
	space *Space
	base  uint64
	size  uint64 // total mapped heap bytes across all chunks
	limit uint64 // maximum the heap may grow to

	mu        sync.Mutex
	free      *freeBlock        // address-ordered singly linked free list
	allocated map[uint64]uint64 // addr -> size, so Free needs no size
	inUse     uint64
	peak      uint64
	allocs    uint64
	frees     uint64
	lastChunk uint64
	fixed     bool   // NewHeapAt heaps cannot grow
	chunks    []span // mapped chunk ranges, for invariant checking
}

// span is one mapped heap chunk.
type span struct{ base, size uint64 }

type freeBlock struct {
	addr uint64
	size uint64
	next *freeBlock
}

// Errors returned by heap operations.
var (
	ErrHeapFull    = errors.New("mem: heap exhausted")
	ErrBadFree     = errors.New("mem: free of unallocated address")
	ErrDoubleAlloc = errors.New("mem: internal allocator corruption")
)

// minAlign is the minimum alignment of every allocation.
const minAlign = 16

// initialChunk is the first mapping of a growable heap. Heaps grow on
// demand up to their limit, so a WFD's cold start does not pay for a
// maximal heap it may never use — the same reason the paper's allocator
// manages the heap in recoverable units.
const initialChunk = 4 << 20

// NewHeap builds an allocator allowed to grow to limit bytes, mapping a
// small initial chunk now and further chunks on demand.
func NewHeap(space *Space, limit uint64) (*Heap, error) {
	limit = roundUp(limit)
	first := uint64(initialChunk)
	if first > limit {
		first = limit
	}
	first = roundUp(first)
	// +PageSize: an unmapped-by-the-heap guard page so a later chunk
	// mapped right after can never coalesce with this one.
	base, err := space.Map(first + PageSize)
	if err != nil {
		return nil, err
	}
	return &Heap{
		space:     space,
		base:      base,
		size:      first,
		limit:     limit,
		lastChunk: first,
		free:      &freeBlock{addr: base, size: first},
		allocated: make(map[uint64]uint64),
		chunks:    []span{{base, first}},
	}, nil
}

// grow maps an additional chunk able to hold at least need bytes.
// Chunks are separated by an unmapped guard page so free blocks from
// different chunks can never coalesce into a span that crosses a
// mapping boundary (buffers must stay contiguous for zero-copy views).
// Caller holds h.mu.
func (h *Heap) grow(need uint64) error {
	if h.fixed {
		return ErrHeapFull
	}
	chunk := h.lastChunk * 2
	if chunk < roundUp(need)+PageSize {
		chunk = roundUp(need) + PageSize
	}
	if remaining := h.limit - h.size; chunk > remaining {
		chunk = remaining
	}
	if chunk < roundUp(need) {
		return ErrHeapFull
	}
	base, err := h.space.Map(chunk + PageSize) // +guard page
	if err != nil {
		return err
	}
	h.size += chunk
	h.lastChunk = chunk
	h.chunks = append(h.chunks, span{base, chunk})
	h.insertFree(base, chunk)
	return nil
}

// NewHeapAt builds an allocator over an already-mapped region. Used when
// the visor pre-partitions the WFD address space and binds keys first.
func NewHeapAt(space *Space, base, size uint64) *Heap {
	return &Heap{
		space:     space,
		base:      base,
		size:      size,
		limit:     size,
		lastChunk: size,
		fixed:     true,
		free:      &freeBlock{addr: base, size: size},
		allocated: make(map[uint64]uint64),
	}
}

// alignUp rounds addr up to the next multiple of align (a power of two or
// any positive value; we support both by using arithmetic rounding).
func alignUp(addr, align uint64) uint64 {
	if align == 0 {
		align = 1
	}
	rem := addr % align
	if rem == 0 {
		return addr
	}
	return addr + align - rem
}

// Alloc returns the address of a size-byte block aligned to align.
// First-fit: walks the address-ordered free list and carves the first
// block that can satisfy the request, splitting front and back remainders
// back onto the list.
func (h *Heap) Alloc(size, align uint64) (uint64, error) {
	if size == 0 {
		return 0, errors.New("mem: zero-size allocation")
	}
	if align < minAlign {
		align = minAlign
	}
	size = alignUp(size, minAlign)

	h.mu.Lock()
	defer h.mu.Unlock()

retry:
	var prev *freeBlock
	for b := h.free; b != nil; prev, b = b, b.next {
		start := alignUp(b.addr, align)
		pad := start - b.addr
		if b.size < pad+size {
			continue
		}
		// Unlink b, then return the front pad and tail remainder.
		if prev == nil {
			h.free = b.next
		} else {
			prev.next = b.next
		}
		if pad > 0 {
			h.insertFree(b.addr, pad)
		}
		if tail := b.size - pad - size; tail > 0 {
			h.insertFree(start+size, tail)
		}
		if _, dup := h.allocated[start]; dup {
			return 0, ErrDoubleAlloc
		}
		h.allocated[start] = size
		h.inUse += size
		h.allocs++
		if h.inUse > h.peak {
			h.peak = h.inUse
		}
		return start, nil
	}
	// No fit in the mapped chunks: grow toward the limit and retry.
	// The padding bound covers the worst-case alignment slack.
	if err := h.grow(size + align); err == nil {
		goto retry
	}
	return 0, fmt.Errorf("%w: want %d bytes align %d (in use %d of %d, limit %d)",
		ErrHeapFull, size, align, h.inUse, h.size, h.limit)
}

// Free returns the block at addr to the free list, coalescing with
// adjacent free blocks.
func (h *Heap) Free(addr uint64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	size, ok := h.allocated[addr]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrBadFree, addr)
	}
	delete(h.allocated, addr)
	h.inUse -= size
	h.frees++
	h.insertFree(addr, size)
	return nil
}

// insertFree inserts [addr, addr+size) into the address-ordered free
// list, merging with neighbours. Caller holds h.mu.
func (h *Heap) insertFree(addr, size uint64) {
	var prev *freeBlock
	b := h.free
	for b != nil && b.addr < addr {
		prev, b = b, b.next
	}
	nb := &freeBlock{addr: addr, size: size, next: b}
	if prev == nil {
		h.free = nb
	} else {
		prev.next = nb
	}
	// Coalesce nb with its successor, then predecessor with nb.
	if nb.next != nil && nb.addr+nb.size == nb.next.addr {
		nb.size += nb.next.size
		nb.next = nb.next.next
	}
	if prev != nil && prev.addr+prev.size == nb.addr {
		prev.size += nb.size
		prev.next = nb.next
	}
}

// SizeOf reports the size of the live allocation at addr.
func (h *Heap) SizeOf(addr uint64) (uint64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	size, ok := h.allocated[addr]
	return size, ok
}

// Base returns the heap's base address.
func (h *Heap) Base() uint64 { return h.base }

// Size returns the heap's total capacity in bytes.
func (h *Heap) Size() uint64 { return h.size }

// Space returns the address space the heap allocates from.
func (h *Heap) Space() *Space { return h.space }

// HeapStats is a snapshot of allocator counters.
type HeapStats struct {
	InUse      uint64
	Peak       uint64
	Allocs     uint64
	Frees      uint64
	FreeBlocks int
	LargestGap uint64
}

// Stats returns current allocator counters.
func (h *Heap) Stats() HeapStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HeapStats{InUse: h.inUse, Peak: h.peak, Allocs: h.allocs, Frees: h.frees}
	for b := h.free; b != nil; b = b.next {
		st.FreeBlocks++
		if b.size > st.LargestGap {
			st.LargestGap = b.size
		}
	}
	return st
}

// checkInvariants validates free-list ordering, non-overlap and
// accounting. Used by tests (including property-based tests).
func (h *Heap) checkInvariants() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	inChunk := func(addr, size uint64) bool {
		for _, c := range h.chunks {
			if addr >= c.base && addr+size <= c.base+c.size {
				return true
			}
		}
		return h.fixed && addr >= h.base && addr+size <= h.base+h.size
	}
	var freeTotal uint64
	for b := h.free; b != nil; b = b.next {
		if b.size == 0 {
			return fmt.Errorf("zero-size free block at %#x", b.addr)
		}
		if !inChunk(b.addr, b.size) {
			return fmt.Errorf("free block [%#x,%#x) outside heap chunks", b.addr, b.addr+b.size)
		}
		if b.next != nil {
			if b.addr+b.size > b.next.addr {
				return fmt.Errorf("free blocks overlap or unordered at %#x", b.addr)
			}
			if b.addr+b.size == b.next.addr {
				return fmt.Errorf("uncoalesced neighbours at %#x", b.addr)
			}
		}
		freeTotal += b.size
	}
	if freeTotal+h.inUse != h.size {
		return fmt.Errorf("accounting mismatch: free %d + inUse %d != size %d",
			freeTotal, h.inUse, h.size)
	}
	for addr, size := range h.allocated {
		if !inChunk(addr, size) {
			return fmt.Errorf("allocation [%#x,%#x) outside heap chunks", addr, addr+size)
		}
	}
	return nil
}
