package mem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestHeap(t *testing.T, size uint64) *Heap {
	t.Helper()
	h, err := NewHeap(NewSpace(0), size)
	if err != nil {
		t.Fatalf("NewHeap: %v", err)
	}
	return h
}

func TestAllocFree(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	a, err := h.Alloc(100, 0)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if a < h.Base() || a >= h.Base()+h.Size() {
		t.Fatalf("allocation %#x outside heap [%#x,%#x)", a, h.Base(), h.Base()+h.Size())
	}
	if err := h.Free(a); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := h.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocAlignment(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	for _, align := range []uint64{16, 64, 256, 4096} {
		a, err := h.Alloc(24, align)
		if err != nil {
			t.Fatalf("Alloc align %d: %v", align, err)
		}
		if a%align != 0 {
			t.Fatalf("Alloc align %d returned %#x", align, a)
		}
	}
}

func TestAllocationsDoNotOverlap(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	type span struct{ a, n uint64 }
	var spans []span
	for i := 0; i < 100; i++ {
		n := uint64(1 + i*7%500)
		a, err := h.Alloc(n, 0)
		if err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
		spans = append(spans, span{a, n})
	}
	for i, s1 := range spans {
		for j, s2 := range spans {
			if i == j {
				continue
			}
			if s1.a < s2.a+s2.n && s2.a < s1.a+s1.n {
				t.Fatalf("overlap: [%#x,%#x) and [%#x,%#x)", s1.a, s1.a+s1.n, s2.a, s2.a+s2.n)
			}
		}
	}
}

func TestFreeCoalescesAndReuses(t *testing.T) {
	h := newTestHeap(t, 64*1024)
	// Fill the heap with equal blocks, free them all, then one big alloc
	// must succeed — proving coalescing works.
	var addrs []uint64
	for {
		a, err := h.Alloc(1024, 0)
		if err != nil {
			break
		}
		addrs = append(addrs, a)
	}
	if len(addrs) < 32 {
		t.Fatalf("expected many blocks, got %d", len(addrs))
	}
	// Free in shuffled order to exercise both merge directions.
	r := rand.New(rand.NewSource(7))
	r.Shuffle(len(addrs), func(i, j int) { addrs[i], addrs[j] = addrs[j], addrs[i] })
	for _, a := range addrs {
		if err := h.Free(a); err != nil {
			t.Fatalf("Free(%#x): %v", a, err)
		}
	}
	if err := h.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.FreeBlocks != 1 {
		t.Fatalf("free blocks after full free = %d, want 1", st.FreeBlocks)
	}
	if _, err := h.Alloc(h.Size()-minAlign, 0); err != nil {
		t.Fatalf("whole-heap alloc after coalescing: %v", err)
	}
}

func TestHeapExhaustion(t *testing.T) {
	h := newTestHeap(t, 8*1024)
	if _, err := h.Alloc(16*1024, 0); !errors.Is(err, ErrHeapFull) {
		t.Fatalf("oversized alloc: err = %v, want ErrHeapFull", err)
	}
	a, err := h.Alloc(4*1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(6*1024, 0); !errors.Is(err, ErrHeapFull) {
		t.Fatalf("alloc beyond remainder: err = %v, want ErrHeapFull", err)
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(6*1024, 0); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}

func TestBadFree(t *testing.T) {
	h := newTestHeap(t, 1<<16)
	if err := h.Free(h.Base() + 64); !errors.Is(err, ErrBadFree) {
		t.Fatalf("free of never-allocated: err = %v, want ErrBadFree", err)
	}
	a, _ := h.Alloc(64, 0)
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double free: err = %v, want ErrBadFree", err)
	}
}

func TestHeapStats(t *testing.T) {
	h := newTestHeap(t, 1<<16)
	a, _ := h.Alloc(100, 0)
	b, _ := h.Alloc(200, 0)
	st := h.Stats()
	if st.Allocs != 2 || st.Frees != 0 {
		t.Fatalf("stats = %+v, want 2 allocs 0 frees", st)
	}
	if st.InUse == 0 || st.Peak < st.InUse {
		t.Fatalf("stats accounting broken: %+v", st)
	}
	h.Free(a)
	h.Free(b)
	st = h.Stats()
	if st.InUse != 0 || st.Frees != 2 {
		t.Fatalf("after frees: %+v", st)
	}
	if st.Peak == 0 {
		t.Fatal("peak lost after free")
	}
}

func TestSizeOf(t *testing.T) {
	h := newTestHeap(t, 1<<16)
	a, _ := h.Alloc(100, 0)
	n, ok := h.SizeOf(a)
	if !ok || n < 100 {
		t.Fatalf("SizeOf = %d,%v; want >=100,true", n, ok)
	}
	if _, ok := h.SizeOf(a + 1); ok {
		t.Fatal("SizeOf of interior pointer should miss")
	}
}

// TestHeapPropertyRandomWorkload drives a random alloc/free sequence and
// asserts the allocator invariants hold throughout (property-based).
func TestHeapPropertyRandomWorkload(t *testing.T) {
	f := func(seed int64) bool {
		h, err := NewHeap(NewSpace(0), 1<<18)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		live := make(map[uint64]bool)
		var addrs []uint64
		for i := 0; i < 300; i++ {
			if len(addrs) == 0 || r.Intn(100) < 60 {
				size := uint64(1 + r.Intn(2000))
				align := uint64(1) << uint(r.Intn(8)) // 1..128
				a, err := h.Alloc(size, align)
				if err != nil {
					continue // heap may be full; that's fine
				}
				if live[a] {
					t.Logf("seed %d: address %#x returned twice", seed, a)
					return false
				}
				live[a] = true
				addrs = append(addrs, a)
			} else {
				i := r.Intn(len(addrs))
				a := addrs[i]
				addrs = append(addrs[:i], addrs[i+1:]...)
				delete(live, a)
				if err := h.Free(a); err != nil {
					t.Logf("seed %d: Free(%#x): %v", seed, a, err)
					return false
				}
			}
			if err := h.checkInvariants(); err != nil {
				t.Logf("seed %d: invariant: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestHeapPropertyDataIntegrity writes a pattern into each allocation and
// verifies no allocation's bytes are disturbed by later activity.
func TestHeapPropertyDataIntegrity(t *testing.T) {
	f := func(seed int64) bool {
		space := NewSpace(0)
		h, err := NewHeap(space, 1<<18)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		type rec struct {
			addr, size uint64
			tag        byte
		}
		var recs []rec
		for i := 0; i < 120; i++ {
			size := uint64(1 + r.Intn(512))
			a, err := h.Alloc(size, 0)
			if err != nil {
				break
			}
			tag := byte(r.Intn(256))
			fill := make([]byte, size)
			for j := range fill {
				fill[j] = tag
			}
			if err := space.WriteAt(nil, a, fill); err != nil {
				return false
			}
			recs = append(recs, rec{a, size, tag})
			// Occasionally free a random earlier allocation.
			if len(recs) > 2 && r.Intn(3) == 0 {
				k := r.Intn(len(recs))
				h.Free(recs[k].addr)
				recs = append(recs[:k], recs[k+1:]...)
			}
		}
		for _, rc := range recs {
			got := make([]byte, rc.size)
			if err := space.ReadAt(nil, rc.addr, got); err != nil {
				return false
			}
			for _, b := range got {
				if b != rc.tag {
					t.Logf("seed %d: allocation at %#x corrupted", seed, rc.addr)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNewHeapAt(t *testing.T) {
	s := NewSpace(0)
	base, err := s.Map(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHeapAt(s, base, 1<<16)
	a, err := h.Alloc(128, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a < base || a >= base+1<<16 {
		t.Fatalf("alloc %#x outside pre-mapped region", a)
	}
}

func BenchmarkHeapAllocFree(b *testing.B) {
	h, err := NewHeap(NewSpace(0), 1<<24)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, err := h.Alloc(256, 16)
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Free(a); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHeapGrowsOnDemand(t *testing.T) {
	h, err := NewHeap(NewSpace(0), 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if h.Size() != initialChunk {
		t.Fatalf("initial heap size = %d, want %d", h.Size(), initialChunk)
	}
	// Allocate beyond the initial chunk: the heap must grow, and the
	// allocation must be contiguous (usable as a zero-copy view).
	a, err := h.Alloc(10<<20, 0)
	if err != nil {
		t.Fatalf("large alloc: %v", err)
	}
	if h.Size() <= initialChunk {
		t.Fatalf("heap did not grow: %d", h.Size())
	}
	if _, err := h.Space().Slice(nil, a, 10<<20, true); err != nil {
		t.Fatalf("grown allocation not contiguous: %v", err)
	}
	if err := h.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapGrowthBoundedByLimit(t *testing.T) {
	h, err := NewHeap(NewSpace(0), 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(16<<20, 0); !errors.Is(err, ErrHeapFull) {
		t.Fatalf("over-limit alloc: err = %v", err)
	}
	// Within the limit growth works: a second 3 MiB allocation forces a
	// chunk beyond the 4 MiB initial mapping but stays under 8 MiB total.
	if _, err := h.Alloc(3<<20, 0); err != nil {
		t.Fatalf("first alloc: %v", err)
	}
	if _, err := h.Alloc(3<<20, 0); err != nil {
		t.Fatalf("growth within limit: %v", err)
	}
}

func TestHeapChunksNeverCoalesceAcrossGuard(t *testing.T) {
	h, err := NewHeap(NewSpace(0), 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Force several growth steps, then free everything: the free list
	// must keep one block per chunk (guard pages prevent merging).
	var addrs []uint64
	for i := 0; i < 4; i++ {
		a, err := h.Alloc(5<<20, 0)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	for _, a := range addrs {
		if err := h.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.FreeBlocks < 2 {
		t.Fatalf("chunks merged across guard pages: %d free blocks", st.FreeBlocks)
	}
	if st.InUse != 0 {
		t.Fatalf("in use after full free: %d", st.InUse)
	}
}
