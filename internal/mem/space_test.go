package mem

import (
	"bytes"
	"errors"
	"testing"
)

// allowKeys is a test Access allowing only the listed keys.
type allowKeys struct {
	read  map[uint8]bool
	write map[uint8]bool
}

func (a allowKeys) Allows(key uint8, write bool) bool {
	if write {
		return a.write[key]
	}
	return a.read[key]
}

func TestMapReadWrite(t *testing.T) {
	s := NewSpace(0)
	base, err := s.Map(3 * PageSize)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	msg := []byte("hello, single address space")
	if err := s.WriteAt(nil, base+100, msg); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(msg))
	if err := s.ReadAt(nil, base+100, got); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip mismatch: %q != %q", got, msg)
	}
}

func TestMapRoundsUpToPage(t *testing.T) {
	s := NewSpace(0)
	base, err := s.Map(1)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	// The whole page must be addressable.
	if err := s.WriteAt(nil, base+PageSize-1, []byte{0xFF}); err != nil {
		t.Fatalf("WriteAt at page end: %v", err)
	}
	if s.Mapped() != PageSize {
		t.Fatalf("Mapped = %d, want %d", s.Mapped(), PageSize)
	}
}

func TestUnmappedAccessFails(t *testing.T) {
	s := NewSpace(0)
	if err := s.ReadAt(nil, 0xdead000, make([]byte, 8)); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("ReadAt unmapped: err = %v, want ErrBadAddress", err)
	}
	if err := s.WriteAt(nil, 0xdead000, make([]byte, 8)); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("WriteAt unmapped: err = %v, want ErrBadAddress", err)
	}
}

func TestAccessCrossingRegionEndFails(t *testing.T) {
	s := NewSpace(0)
	base, err := s.Map(PageSize)
	if err != nil {
		t.Fatal(err)
	}
	err = s.ReadAt(nil, base+PageSize-4, make([]byte, 8))
	if !errors.Is(err, ErrBadAddress) {
		t.Fatalf("read across region end: err = %v, want ErrBadAddress", err)
	}
}

func TestMapAtOverlapRejected(t *testing.T) {
	s := NewSpace(0)
	if err := s.MapAt(0x10000, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.MapAt(0x10000+PageSize, PageSize); !errors.Is(err, ErrOverlap) {
		t.Fatalf("overlapping MapAt: err = %v, want ErrOverlap", err)
	}
	if err := s.MapAt(0x10000-PageSize, 2*PageSize); !errors.Is(err, ErrOverlap) {
		t.Fatalf("overlapping MapAt (tail): err = %v, want ErrOverlap", err)
	}
	// Adjacent is fine.
	if err := s.MapAt(0x10000+2*PageSize, PageSize); err != nil {
		t.Fatalf("adjacent MapAt: %v", err)
	}
}

func TestMapAtUnaligned(t *testing.T) {
	s := NewSpace(0)
	if err := s.MapAt(0x10001, PageSize); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("unaligned MapAt: err = %v, want ErrUnaligned", err)
	}
}

func TestUnmap(t *testing.T) {
	s := NewSpace(0)
	base, err := s.Map(PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Unmap(base); err != nil {
		t.Fatalf("Unmap: %v", err)
	}
	if err := s.ReadAt(nil, base, make([]byte, 1)); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("read after unmap: err = %v, want ErrBadAddress", err)
	}
	if s.Mapped() != 0 {
		t.Fatalf("Mapped after unmap = %d, want 0", s.Mapped())
	}
	if err := s.Unmap(base); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("double unmap: err = %v, want ErrBadAddress", err)
	}
}

func TestMemoryLimit(t *testing.T) {
	s := NewSpace(2 * PageSize)
	if _, err := s.Map(PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Map(2 * PageSize); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("over-limit Map: err = %v, want ErrNoMemory", err)
	}
	if _, err := s.Map(PageSize); err != nil {
		t.Fatalf("Map within limit after failure: %v", err)
	}
}

func TestProtectionKeys(t *testing.T) {
	s := NewSpace(0)
	base, err := s.Map(4 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	// Tag the middle two pages with key 5.
	if err := s.SetKey(base+PageSize, 2*PageSize, 5); err != nil {
		t.Fatalf("SetKey: %v", err)
	}
	k, err := s.KeyAt(base + PageSize)
	if err != nil || k != 5 {
		t.Fatalf("KeyAt = %d, %v; want 5", k, err)
	}
	if k, _ := s.KeyAt(base); k != 0 {
		t.Fatalf("untagged page key = %d, want 0", k)
	}

	userOnly := allowKeys{
		read:  map[uint8]bool{0: true},
		write: map[uint8]bool{0: true},
	}
	// Key-0 page is accessible.
	if err := s.WriteAt(userOnly, base, []byte{1}); err != nil {
		t.Fatalf("write to allowed page: %v", err)
	}
	// Key-5 page is not.
	if err := s.WriteAt(userOnly, base+PageSize, []byte{1}); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("write to denied page: err = %v, want ErrAccessDenied", err)
	}
	if err := s.ReadAt(userOnly, base+PageSize, make([]byte, 1)); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("read from denied page: err = %v, want ErrAccessDenied", err)
	}
	// A span covering both keys is denied as a whole.
	if err := s.WriteAt(userOnly, base+PageSize-2, make([]byte, 4)); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("write spanning denied page: err = %v, want ErrAccessDenied", err)
	}
}

func TestReadOnlyKeyPermits(t *testing.T) {
	s := NewSpace(0)
	base, err := s.Map(PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetKey(base, PageSize, 3); err != nil {
		t.Fatal(err)
	}
	ro := allowKeys{read: map[uint8]bool{3: true}, write: map[uint8]bool{}}
	if err := s.ReadAt(ro, base, make([]byte, 8)); err != nil {
		t.Fatalf("read with read-only key: %v", err)
	}
	if err := s.WriteAt(ro, base, make([]byte, 8)); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("write with read-only key: err = %v, want ErrAccessDenied", err)
	}
}

func TestSliceZeroCopy(t *testing.T) {
	s := NewSpace(0)
	base, err := s.Map(2 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Slice(nil, base+16, 64, true)
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	copy(v, "reference passing")
	got := make([]byte, 17)
	if err := s.ReadAt(nil, base+16, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "reference passing" {
		t.Fatalf("slice write not visible via ReadAt: %q", got)
	}
	// The view must alias, not copy: writes via ReadAt path visible in v.
	if err := s.WriteAt(nil, base+16, []byte("R")); err != nil {
		t.Fatal(err)
	}
	if v[0] != 'R' {
		t.Fatal("Slice returned a copy, want an aliasing view")
	}
}

func TestLazyRegionFaults(t *testing.T) {
	s := NewSpace(0)
	var faulted []uint64
	base, err := s.MapLazy(4*PageSize, func(addr uint64, data []byte) error {
		faulted = append(faulted, addr)
		for i := range data {
			data[i] = byte(addr / PageSize) // fill pattern identifies page
		}
		return nil
	})
	if err != nil {
		t.Fatalf("MapLazy: %v", err)
	}
	if s.Faults() != 0 {
		t.Fatalf("faults before access = %d, want 0", s.Faults())
	}
	buf := make([]byte, 8)
	if err := s.ReadAt(nil, base+2*PageSize+5, buf); err != nil {
		t.Fatalf("ReadAt lazy: %v", err)
	}
	if len(faulted) != 1 || faulted[0] != base+2*PageSize {
		t.Fatalf("faulted pages = %#x, want exactly [%#x]", faulted, base+2*PageSize)
	}
	want := byte((base + 2*PageSize) / PageSize)
	if buf[0] != want {
		t.Fatalf("fault fill: got %d want %d", buf[0], want)
	}
	// Second access: no new fault.
	if err := s.ReadAt(nil, base+2*PageSize, buf); err != nil {
		t.Fatal(err)
	}
	if len(faulted) != 1 {
		t.Fatalf("refault on present page: %d faults", len(faulted))
	}
	if s.Faults() != 1 {
		t.Fatalf("Faults() = %d, want 1", s.Faults())
	}
}

func TestLazyFaultHandlerError(t *testing.T) {
	s := NewSpace(0)
	base, err := s.MapLazy(PageSize, func(addr uint64, data []byte) error {
		return errors.New("backing store gone")
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ReadAt(nil, base, make([]byte, 1)); !errors.Is(err, ErrFaultUnfilled) {
		t.Fatalf("failed fault: err = %v, want ErrFaultUnfilled", err)
	}
}

func TestSetKeyUnaligned(t *testing.T) {
	s := NewSpace(0)
	base, _ := s.Map(PageSize)
	if err := s.SetKey(base+1, PageSize, 1); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("unaligned SetKey: err = %v, want ErrUnaligned", err)
	}
	if err := s.SetKey(base, PageSize-1, 1); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("unaligned length SetKey: err = %v, want ErrUnaligned", err)
	}
}

func TestSetKeySpansRegions(t *testing.T) {
	s := NewSpace(0)
	if err := s.MapAt(0x100000, PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.MapAt(0x100000+PageSize, PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.SetKey(0x100000, 2*PageSize, 7); err != nil {
		t.Fatalf("SetKey spanning adjacent regions: %v", err)
	}
	for _, a := range []uint64{0x100000, 0x100000 + PageSize} {
		if k, _ := s.KeyAt(a); k != 7 {
			t.Fatalf("KeyAt(%#x) = %d, want 7", a, k)
		}
	}
}

func TestConcurrentReadWriteDistinctRegions(t *testing.T) {
	s := NewSpace(0)
	const n = 8
	bases := make([]uint64, n)
	for i := range bases {
		b, err := s.Map(PageSize)
		if err != nil {
			t.Fatal(err)
		}
		bases[i] = b
	}
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			buf := []byte{byte(i)}
			for j := 0; j < 1000; j++ {
				if err := s.WriteAt(nil, bases[i], buf); err != nil {
					done <- err
					return
				}
				got := make([]byte, 1)
				if err := s.ReadAt(nil, bases[i], got); err != nil {
					done <- err
					return
				}
				if got[0] != byte(i) {
					done <- errors.New("cross-region interference")
					return
				}
			}
			done <- nil
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
