package mem

import "errors"

// ErrSealed is returned for mutating operations on a sealed Space.
var ErrSealed = errors.New("mem: space is sealed")

// Seal freezes the Space: no further Map/Unmap/SetKey/WriteAt, no
// writable Slice views, and no lazy fault fills. A warm-pool template is
// sealed once its guest runtime is initialized, so every clone cut from
// it sees exactly the snapshot state and nothing can mutate the pages
// the clones share. Sealing is idempotent and cannot be undone.
func (s *Space) Seal() {
	s.mu.Lock()
	s.sealed = true
	s.mu.Unlock()
}

// Sealed reports whether the Space has been sealed.
func (s *Space) Sealed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sealed
}

// Fork seals the Space and returns a copy-on-write clone of it. This is
// the snapshot/fork boot path: the clone shares the template's backing
// pages (the initialized guest runtime, loaded modules, filesystem
// buffers) at zero copy cost, and a region's pages are copied only when
// the clone first mutates them. Sharing is at region granularity —
// clones allocate their own heaps in fresh regions, so breaks are rare
// in practice.
//
// Protection-key bindings and fault-present bitmaps are copied eagerly
// (they are small), so the clone can rebind fresh MPK keys without
// touching the template. The bump pointer and limit carry over: regions
// the clone maps afterwards never overlap the inherited layout.
func (s *Space) Fork() *Space {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealed = true

	child := &Space{
		limit:   s.limit,
		mapped:  s.mapped,
		next:    s.next,
		regions: make([]*region, len(s.regions)),
	}
	for i, r := range s.regions {
		c := &region{
			base:    r.base,
			size:    r.size,
			data:    r.data, // shared until first write
			cow:     true,
			keys:    append([]uint8(nil), r.keys...),
			lazy:    r.lazy,
			handler: r.handler,
		}
		if r.lazy {
			c.present = append([]bool(nil), r.present...)
		}
		child.regions[i] = c
	}
	s.forks++
	return child
}

// Forks reports how many copy-on-write clones were cut from this Space.
func (s *Space) Forks() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.forks
}

// CowBreaks reports how many inherited regions this Space has privatised
// by copying their backing pages.
func (s *Space) CowBreaks() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cowBreaks
}

// SharedBytes reports how many mapped bytes are still shared with the
// template this Space was forked from.
func (s *Space) SharedBytes() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n uint64
	for _, r := range s.regions {
		if r.cow {
			n += r.size
		}
	}
	return n
}

// needsFill reports whether serving [addr, addr+n) would fault in a
// missing lazy page, i.e. mutate the backing array.
func (r *region) needsFill(addr, n uint64) bool {
	if !r.lazy || addr+n > r.end() {
		return false
	}
	first := r.pageIndex(addr)
	last := r.pageIndex(addr + n - 1)
	for i := first; i <= last; i++ {
		if !r.present[i] {
			return true
		}
	}
	return false
}

// ensureOwned breaks copy-on-write for the region containing addr when
// the pending access would mutate its backing array: an explicit write,
// or a read that must fault in a lazy page. The cow flag only ever
// transitions true→false, so the recheck under the write lock is the
// only synchronisation needed.
func (s *Space) ensureOwned(addr, n uint64, write bool) {
	if n == 0 {
		return
	}
	s.mu.RLock()
	r := s.find(addr)
	need := r != nil && r.cow && (write || r.needsFill(addr, n))
	s.mu.RUnlock()
	if !need {
		return
	}
	s.mu.Lock()
	if r := s.find(addr); r != nil && r.cow {
		private := make([]byte, len(r.data))
		copy(private, r.data)
		r.data = private
		r.cow = false
		s.cowBreaks++
	}
	s.mu.Unlock()
}
