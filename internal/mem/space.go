// Package mem provides the simulated single address space that backs a
// WorkFlow Domain (WFD). The paper runs every function of a workflow, the
// LibOS, and the visor inside one process address space partitioned with
// Intel MPK; here the address space is modelled explicitly so that the
// protection-key layer (internal/mpk) can bind a key to every page and
// check each access, and so that the mmap_file_backend module can handle
// page faults in user space (the paper uses Linux userfaultfd).
//
// Addresses are abstract uint64 values. Memory is organised in regions
// (created by Map/MapAt) that are contiguous in the backing store, which
// lets higher layers obtain zero-copy views of buffers that live entirely
// inside one region — this is what makes reference passing between
// functions of a WFD a constant-time operation, the core of the paper's
// intermediate-data-transfer optimisation.
package mem

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// PageSize is the granularity of mapping, key binding and fault handling.
const PageSize = 4096

// Common errors returned by address-space operations.
var (
	ErrNoMemory      = errors.New("mem: out of memory")
	ErrBadAddress    = errors.New("mem: address not mapped")
	ErrOverlap       = errors.New("mem: mapping overlaps existing region")
	ErrUnaligned     = errors.New("mem: address or length not page aligned")
	ErrAccessDenied  = errors.New("mem: access denied by protection key")
	ErrFaultUnfilled = errors.New("mem: page fault handler did not fill page")
)

// Access decides whether an execution context may touch memory tagged with
// a protection key. The zero contract: a nil Access allows everything
// (kernel/visor context). internal/mpk provides the real implementation.
type Access interface {
	// Allows reports whether pages bound to key may be read (write=false)
	// or written (write=true) by the current context.
	Allows(key uint8, write bool) bool
}

// FaultHandler fills a freshly-faulted page. addr is the page-aligned
// virtual address; data is the PageSize-long backing slice to fill. It is
// the analogue of a userfaultfd handler in the paper's mmap_file_backend
// module.
type FaultHandler func(addr uint64, data []byte) error

// region is a contiguous mapping inside a Space.
type region struct {
	base uint64
	size uint64
	data []byte

	keys []uint8 // protection key per page

	// cow marks a region whose data array is still shared with the
	// template Space it was forked from; the first mutating access
	// privatises the array (see ensureOwned in fork.go).
	cow bool

	// Lazy (fault-backed) regions start with no pages present.
	lazy    bool
	present []bool
	handler FaultHandler
}

func (r *region) end() uint64 { return r.base + r.size }

func (r *region) pageIndex(addr uint64) int {
	return int((addr - r.base) / PageSize)
}

// Space is a simulated virtual address space. All methods are safe for
// concurrent use; data copies happen outside the region-table lock so
// parallel functions of a workflow can stream through memory concurrently.
type Space struct {
	mu      sync.RWMutex
	regions []*region // sorted by base
	limit   uint64    // total bytes allowed to be mapped
	mapped  uint64
	next    uint64 // bump pointer for Map
	sealed  bool   // frozen template: no mutation, only forking

	faults    uint64 // page faults served (metrics)
	forks     uint64 // copy-on-write clones cut from this space
	cowBreaks uint64 // inherited regions privatised by a write
}

// NewSpace returns a Space allowed to map at most limit bytes. A limit of
// 0 means unconstrained.
func NewSpace(limit uint64) *Space {
	return &Space{limit: limit, next: PageSize} // keep page 0 unmapped
}

// roundUp rounds n up to the next multiple of PageSize.
func roundUp(n uint64) uint64 {
	return (n + PageSize - 1) &^ uint64(PageSize-1)
}

// Map reserves a new region of at least length bytes and returns its base
// address. The region is eagerly backed.
func (s *Space) Map(length uint64) (uint64, error) {
	return s.mapRegion(0, length, false, nil)
}

// MapAt maps a region at a fixed page-aligned base address.
func (s *Space) MapAt(base, length uint64) error {
	if base%PageSize != 0 {
		return ErrUnaligned
	}
	_, err := s.mapRegion(base, length, false, nil)
	return err
}

// MapLazy reserves a fault-backed region: pages materialise on first
// access through handler. This is the substrate for mmap_file_backend.
func (s *Space) MapLazy(length uint64, handler FaultHandler) (uint64, error) {
	if handler == nil {
		return 0, errors.New("mem: MapLazy requires a fault handler")
	}
	return s.mapRegion(0, length, true, handler)
}

func (s *Space) mapRegion(base, length uint64, lazy bool, h FaultHandler) (uint64, error) {
	if length == 0 {
		return 0, errors.New("mem: zero-length mapping")
	}
	length = roundUp(length)

	s.mu.Lock()
	defer s.mu.Unlock()

	if s.sealed {
		return 0, ErrSealed
	}
	if s.limit != 0 && s.mapped+length > s.limit {
		return 0, fmt.Errorf("%w: %d mapped, %d requested, limit %d",
			ErrNoMemory, s.mapped, length, s.limit)
	}
	if base == 0 {
		base = s.next
	}
	idx := sort.Search(len(s.regions), func(i int) bool {
		return s.regions[i].base >= base
	})
	if idx > 0 && s.regions[idx-1].end() > base {
		return 0, fmt.Errorf("%w: [%#x,%#x)", ErrOverlap, base, base+length)
	}
	if idx < len(s.regions) && s.regions[idx].base < base+length {
		return 0, fmt.Errorf("%w: [%#x,%#x)", ErrOverlap, base, base+length)
	}

	npages := int(length / PageSize)
	r := &region{
		base: base,
		size: length,
		keys: make([]uint8, npages),
		lazy: lazy,
	}
	if lazy {
		r.present = make([]bool, npages)
		r.handler = h
	}
	r.data = make([]byte, length)

	s.regions = append(s.regions, nil)
	copy(s.regions[idx+1:], s.regions[idx:])
	s.regions[idx] = r
	s.mapped += length
	if base+length > s.next {
		s.next = base + length
	}
	return base, nil
}

// Unmap removes the region based at base. The whole region is removed;
// partial unmapping is not supported (the LibOS never needs it).
func (s *Space) Unmap(base uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		return ErrSealed
	}
	idx := sort.Search(len(s.regions), func(i int) bool {
		return s.regions[i].base >= base
	})
	if idx == len(s.regions) || s.regions[idx].base != base {
		return fmt.Errorf("%w: %#x", ErrBadAddress, base)
	}
	s.mapped -= s.regions[idx].size
	s.regions = append(s.regions[:idx], s.regions[idx+1:]...)
	return nil
}

// find returns the region containing addr, or nil.
// Caller must hold at least the read lock.
func (s *Space) find(addr uint64) *region {
	idx := sort.Search(len(s.regions), func(i int) bool {
		return s.regions[i].end() > addr
	})
	if idx == len(s.regions) || s.regions[idx].base > addr {
		return nil
	}
	return s.regions[idx]
}

// SetKey binds protection key to every page of [base, base+length).
// Both base and length must be page aligned: MPK binds at page level.
func (s *Space) SetKey(base, length uint64, key uint8) error {
	if base%PageSize != 0 || length%PageSize != 0 {
		return ErrUnaligned
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		return ErrSealed
	}
	for addr := base; addr < base+length; {
		r := s.find(addr)
		if r == nil {
			return fmt.Errorf("%w: %#x", ErrBadAddress, addr)
		}
		stop := base + length
		if re := r.end(); re < stop {
			stop = re
		}
		for i := r.pageIndex(addr); addr < stop; i, addr = i+1, addr+PageSize {
			r.keys[i] = key
		}
	}
	return nil
}

// KeyAt reports the protection key bound to the page containing addr.
func (s *Space) KeyAt(addr uint64) (uint8, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r := s.find(addr)
	if r == nil {
		return 0, fmt.Errorf("%w: %#x", ErrBadAddress, addr)
	}
	return r.keys[r.pageIndex(addr)], nil
}

// checkAndFault validates [addr, addr+n) against access and serves faults
// on lazy pages. Caller must hold the read lock; fault filling upgrades
// internally via the per-call slow path (faults are rare by design).
func (s *Space) checkAndFault(r *region, addr, n uint64, access Access, write bool) error {
	if addr+n > r.end() {
		return fmt.Errorf("%w: [%#x,%#x) crosses region end %#x",
			ErrBadAddress, addr, addr+n, r.end())
	}
	first := r.pageIndex(addr)
	last := r.pageIndex(addr + n - 1)
	for i := first; i <= last; i++ {
		if access != nil && !access.Allows(r.keys[i], write) {
			return fmt.Errorf("%w: page %#x key %d write=%v",
				ErrAccessDenied, r.base+uint64(i)*PageSize, r.keys[i], write)
		}
		if r.lazy && !r.present[i] {
			if s.sealed {
				return fmt.Errorf("%w: fault fill at %#x",
					ErrSealed, r.base+uint64(i)*PageSize)
			}
			pageAddr := r.base + uint64(i)*PageSize
			data := r.data[uint64(i)*PageSize : uint64(i+1)*PageSize]
			if err := r.handler(pageAddr, data); err != nil {
				return fmt.Errorf("%w: %v", ErrFaultUnfilled, err)
			}
			r.present[i] = true
			s.faults++
		}
	}
	return nil
}

// ReadAt copies len(p) bytes at addr into p, subject to access checks.
func (s *Space) ReadAt(access Access, addr uint64, p []byte) error {
	if len(p) == 0 {
		return nil
	}
	s.ensureOwned(addr, uint64(len(p)), false)
	s.mu.RLock()
	defer s.mu.RUnlock()
	r := s.find(addr)
	if r == nil {
		return fmt.Errorf("%w: %#x", ErrBadAddress, addr)
	}
	if err := s.checkAndFault(r, addr, uint64(len(p)), access, false); err != nil {
		return err
	}
	copy(p, r.data[addr-r.base:])
	return nil
}

// WriteAt copies p into memory at addr, subject to access checks.
func (s *Space) WriteAt(access Access, addr uint64, p []byte) error {
	if len(p) == 0 {
		return nil
	}
	s.ensureOwned(addr, uint64(len(p)), true)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.sealed {
		return ErrSealed
	}
	r := s.find(addr)
	if r == nil {
		return fmt.Errorf("%w: %#x", ErrBadAddress, addr)
	}
	if err := s.checkAndFault(r, addr, uint64(len(p)), access, true); err != nil {
		return err
	}
	copy(r.data[addr-r.base:], p)
	return nil
}

// Slice returns a zero-copy view of [addr, addr+n). The range must lie in
// a single region. This is the load/store path of the paper's single
// address space: once a function holds a reference (the AsBuffer), reads
// and writes are plain memory operations with no copying.
func (s *Space) Slice(access Access, addr, n uint64, write bool) ([]byte, error) {
	s.ensureOwned(addr, n, write)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if write && s.sealed {
		return nil, ErrSealed
	}
	r := s.find(addr)
	if r == nil {
		return nil, fmt.Errorf("%w: %#x", ErrBadAddress, addr)
	}
	if err := s.checkAndFault(r, addr, n, access, write); err != nil {
		return nil, err
	}
	off := addr - r.base
	return r.data[off : off+n : off+n], nil
}

// Mapped reports the number of bytes currently mapped.
func (s *Space) Mapped() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.mapped
}

// Faults reports the number of page faults served by fault handlers.
func (s *Space) Faults() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.faults
}

// Regions reports the number of live mappings.
func (s *Space) Regions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.regions)
}
