package visor

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"strings"
	"time"

	"alloystack/internal/cluster"
	"alloystack/internal/dag"
	"alloystack/internal/pool"
	"alloystack/internal/xfer"
)

// The watchdog's cluster surface: GET /cluster advertises this node to
// the gateway's membership poll, POST /pools/prewarm asks the node to
// build and seal a warm pool for a workflow (pulling the spec from a
// peer's spec server when it does not know the workflow yet), and the
// spec server itself answers framed GETs for "spec:{workflow}" slots
// over the same wire protocol the multi-node data plane speaks.

// specSlotPrefix namespaces workflow specs on the spec server.
const specSlotPrefix = "spec:"

// ClusterInfo builds this node's advertisement for GET /cluster.
func (wd *Watchdog) ClusterInfo() cluster.NodeInfo {
	info := cluster.NodeInfo{
		ID:       wd.NodeID,
		Inflight: wd.Inflight(),
		SpecAddr: wd.SpecAddr(),
	}
	if info.ID == "" {
		info.ID = wd.Addr()
	}
	if wd.Sched != nil {
		info.Capacity = int64(wd.Sched.Stats().MaxConcurrent)
	} else {
		info.Capacity = wd.MaxInflight
	}
	if bad, _ := wd.Telemetry.Degraded(); bad {
		info.Degraded = true
	}
	info.Workflows = wd.visor.Workflows()
	if wd.Pools != nil {
		for _, ps := range wd.Pools.Stats() {
			info.Warm = append(info.Warm, cluster.WarmAd{Workflow: ps.Workflow, Warm: ps.Warm})
		}
	}
	return info
}

// handleCluster serves GET /cluster: the node advertisement the
// gateway's health loop folds into its membership view.
func (wd *Watchdog) handleCluster(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(wd.ClusterInfo())
}

// StartSpecServer listens on addr (use "127.0.0.1:0" for ephemeral)
// and serves this node's workflow specs to peers over the framed slot
// protocol. It returns the bound address, which the node advertises as
// SpecAddr. Stop closes it.
func (wd *Watchdog) StartSpecServer(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	wd.specLn = ln
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go func() {
				defer conn.Close()
				xfer.ServeSource(conn, wd.lookupSpec)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// SpecAddr returns the spec server's bound address ("" when not
// started).
func (wd *Watchdog) SpecAddr() string {
	if wd.specLn == nil {
		return ""
	}
	return wd.specLn.Addr().String()
}

// lookupSpec answers spec-server GETs: "spec:{workflow}" resolves to
// the registered workflow's JSON.
func (wd *Watchdog) lookupSpec(slot string) ([]byte, bool) {
	name, ok := strings.CutPrefix(slot, specSlotPrefix)
	if !ok {
		return nil, false
	}
	w, err := wd.visor.Workflow(name)
	if err != nil {
		return nil, false
	}
	data, err := json.Marshal(w)
	if err != nil {
		return nil, false
	}
	return data, true
}

// FetchSpec pulls a workflow spec from a peer's spec server and parses
// it (Parse validates, so a malformed or cyclic spec is rejected here,
// before registration).
func FetchSpec(specAddr, workflow string) (*dag.Workflow, error) {
	conn, err := net.DialTimeout("tcp", specAddr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	data, err := xfer.FetchFrom(conn, specSlotPrefix+workflow)
	if err != nil {
		return nil, err
	}
	return dag.Parse(data)
}

// PrewarmRequest is the body of POST /pools/prewarm.
type PrewarmRequest struct {
	// Workflow names the pool to build.
	Workflow string `json:"workflow"`
	// From is the spec-server address of a peer that knows the
	// workflow; consulted only when this node does not.
	From string `json:"from,omitempty"`
}

// PrewarmResponse reports the outcome of a pre-warm.
type PrewarmResponse struct {
	Workflow string `json:"workflow"`
	// Status is "warmed" (a pool was built and sealed now) or
	// "already-warm" (a pool for the workflow existed).
	Status string `json:"status"`
	// Warm counts idle clones ready after the pre-warm.
	Warm  int    `json:"warm,omitempty"`
	Error string `json:"error,omitempty"`
}

// handlePrewarm serves POST /pools/prewarm: build and seal a warm pool
// for the named workflow. When the node does not know the workflow it
// pulls the spec from the peer named in From, registers it, then
// builds the pool — the template boots synchronously, so a 200 means
// warm clones are ready.
func (wd *Watchdog) handlePrewarm(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if wd.Pools == nil || wd.PoolBuilder == nil {
		http.Error(w, "pre-warm not configured on this node", http.StatusNotImplemented)
		return
	}
	var req PrewarmRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Workflow == "" {
		http.Error(w, "want JSON {\"workflow\": ...}", http.StatusBadRequest)
		return
	}
	// One pre-warm builds at a time: a duplicate trigger for the same
	// workflow must observe the first build's pool, not race it.
	wd.prewarmMu.Lock()
	defer wd.prewarmMu.Unlock()
	writeResp := func(status int, resp PrewarmResponse) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(resp)
	}
	if p := wd.Pools.Get(req.Workflow); p != nil {
		writeResp(http.StatusOK, PrewarmResponse{
			Workflow: req.Workflow, Status: "already-warm", Warm: p.Stats().Warm})
		return
	}
	wf, err := wd.visor.Workflow(req.Workflow)
	if errors.Is(err, ErrUnknownWorkflow) && req.From != "" {
		if wf, err = FetchSpec(req.From, req.Workflow); err == nil {
			err = wd.visor.RegisterWorkflow(wf)
		}
	}
	if err != nil {
		writeResp(http.StatusNotFound, PrewarmResponse{
			Workflow: req.Workflow, Status: "error", Error: err.Error()})
		return
	}
	spec, cfg, ok := wd.PoolBuilder(wf)
	if !ok {
		writeResp(http.StatusUnprocessableEntity, PrewarmResponse{
			Workflow: req.Workflow, Status: "error",
			Error: "workflow is not poolable on this node"})
		return
	}
	p, err := pool.New(spec, cfg)
	if err != nil {
		writeResp(http.StatusInternalServerError, PrewarmResponse{
			Workflow: req.Workflow, Status: "error", Error: err.Error()})
		return
	}
	p.Start()
	wd.Pools.Add(p)
	wd.prewarmed.Add(1)
	writeResp(http.StatusOK, PrewarmResponse{
		Workflow: req.Workflow, Status: "warmed", Warm: p.Stats().Warm})
}

// Prewarmed reports pools built via POST /pools/prewarm.
func (wd *Watchdog) Prewarmed() int64 { return wd.prewarmed.Load() }

// Visor exposes the wrapped visor (harnesses register workflows on a
// running node through it).
func (wd *Watchdog) Visor() *Visor { return wd.visor }
