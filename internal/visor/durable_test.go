package visor

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"alloystack/internal/asstd"
	"alloystack/internal/dag"
	"alloystack/internal/faults"
	"alloystack/internal/journal"
)

// countingRegistry is the pipeline registry with per-function execution
// counters (host-side, so they survive nothing — exactly the point: a
// resume must not re-run committed producers) and an export slot on sum.
func countingRegistry(counts map[string]*atomic.Int64) *Registry {
	r := NewRegistry()
	for _, name := range []string{"produce", "double", "sum", "unbook"} {
		counts[name] = &atomic.Int64{}
	}

	r.RegisterNative("produce", func(env *asstd.Env, ctx FuncContext) error {
		counts["produce"].Add(1)
		n := ctx.ParamInt("count", 2)
		for i := 0; i < int(n); i++ {
			b, err := asstd.NewBuffer(env, Slot("produce", 0, "double", i), 8)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(b.Bytes(), uint64(i+1))
		}
		return nil
	})
	r.RegisterNative("double", func(env *asstd.Env, ctx FuncContext) error {
		counts["double"].Add(1)
		in, err := asstd.FromSlot(env, Slot("produce", 0, "double", ctx.Instance))
		if err != nil {
			return err
		}
		v := binary.LittleEndian.Uint64(in.Bytes())
		in.Free()
		out, err := asstd.NewBuffer(env, Slot("double", ctx.Instance, "sum", 0), 8)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(out.Bytes(), v*2)
		return nil
	})
	r.RegisterNative("sum", func(env *asstd.Env, ctx FuncContext) error {
		counts["sum"].Add(1)
		total := uint64(0)
		n := ctx.ParamInt("count", 2)
		for i := 0; i < int(n); i++ {
			b, err := asstd.FromSlot(env, Slot("double", i, "sum", 0))
			if err != nil {
				return err
			}
			total += binary.LittleEndian.Uint64(b.Bytes())
			b.Free()
		}
		out, err := asstd.NewBuffer(env, Slot("sum", 0, "out", 0), 8)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(out.Bytes(), total)
		return nil
	})
	return r
}

func durableOpts(store *journal.Store, mutate func(*RunOptions)) RunOptions {
	return testOpts(func(o *RunOptions) {
		o.Durable = true
		o.Journal = store
		o.ExportSlots = []string{Slot("sum", 0, "out", 0)}
		if mutate != nil {
			mutate(o)
		}
	})
}

func openTestStore(t *testing.T) *journal.Store {
	t.Helper()
	s, err := journal.Open(t.TempDir(), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDurableRunSealsOK(t *testing.T) {
	counts := map[string]*atomic.Int64{}
	v := New(countingRegistry(counts))
	store := openTestStore(t)
	res, err := v.RunWorkflow(pipelineWorkflow(2), durableOpts(store, nil))
	if err != nil {
		t.Fatalf("durable run: %v", err)
	}
	if res.RunID == "" || res.Verdict != "ok" || res.Resumed {
		t.Fatalf("result = %+v", res)
	}
	st, err := store.Load(res.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Sealed || st.Verdict != "ok" || st.CommittedPrefix() != 3 {
		t.Fatalf("journal state = %+v", st)
	}
	// Final output: 2*(1+2) = 6.
	if got := binary.LittleEndian.Uint64(res.Exports[Slot("sum", 0, "out", 0)]); got != 6 {
		t.Fatalf("export = %d, want 6", got)
	}
	// Sealed runs refuse resume.
	o := durableOpts(store, func(o *RunOptions) { o.Resume = res.RunID })
	if _, err := v.RunWorkflow(pipelineWorkflow(2), o); !errors.Is(err, journal.ErrSealed) {
		t.Fatalf("resume of sealed run: err = %v, want ErrSealed", err)
	}
}

func TestDurableCrashResumeSkipsCommitted(t *testing.T) {
	counts := map[string]*atomic.Int64{}
	v := New(countingRegistry(counts))
	store := openTestStore(t)

	// Crash after stage 1's commit: produce and double are durable.
	o := durableOpts(store, func(o *RunOptions) {
		o.Faults = faults.NewPlan(1, faults.Crash{Point: "after-commit:1"})
	})
	res, err := v.RunWorkflow(pipelineWorkflow(2), o)
	if !errors.Is(err, ErrCrashPoint) {
		t.Fatalf("crashpoint: err = %v, want ErrCrashPoint", err)
	}
	id := res.RunID
	st, err := store.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sealed || st.Failed || st.CommittedPrefix() != 2 {
		t.Fatalf("post-crash state = %+v", st)
	}

	// Resume with a fresh (empty) plan: committed stages are skipped.
	ro := durableOpts(store, func(o *RunOptions) { o.Resume = id })
	rres, err := v.RunWorkflow(pipelineWorkflow(2), ro)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !rres.Resumed || rres.StagesSkipped != 2 || rres.Verdict != "ok" {
		t.Fatalf("resume result = %+v", rres)
	}
	if got := counts["produce"].Load(); got != 1 {
		t.Fatalf("produce executed %d times, want 1 (resume must not re-run committed stages)", got)
	}
	if got := counts["double"].Load(); got != 2 {
		t.Fatalf("double executed %d instances, want 2", got)
	}
	if got := binary.LittleEndian.Uint64(rres.Exports[Slot("sum", 0, "out", 0)]); got != 6 {
		t.Fatalf("resumed export = %d, want 6", got)
	}
}

// sagaWorkflow: book(xN, compensated by unbook) -> pay (always fails).
func sagaWorkflow(n int) *dag.Workflow {
	return &dag.Workflow{
		Name: "saga",
		Functions: []dag.FuncSpec{
			{Name: "book", Instances: n, Compensate: "unbook"},
			{Name: "pay", DependsOn: []string{"book"}},
		},
		Compensations: []dag.FuncSpec{{Name: "unbook"}},
	}
}

func sagaRegistry(counts map[string]*atomic.Int64) *Registry {
	r := NewRegistry()
	for _, name := range []string{"book", "pay", "unbook"} {
		counts[name] = &atomic.Int64{}
	}
	r.RegisterNative("book", func(env *asstd.Env, ctx FuncContext) error {
		counts["book"].Add(1)
		return nil
	})
	r.RegisterNative("pay", func(env *asstd.Env, ctx FuncContext) error {
		counts["pay"].Add(1)
		return errors.New("card declined")
	})
	r.RegisterNative("unbook", func(env *asstd.Env, ctx FuncContext) error {
		counts["unbook"].Add(1)
		return nil
	})
	return r
}

func TestDurableFailureUnwindsSaga(t *testing.T) {
	counts := map[string]*atomic.Int64{}
	v := New(sagaRegistry(counts))
	store := openTestStore(t)
	o := testOpts(func(o *RunOptions) {
		o.Durable = true
		o.Journal = store
	})
	res, err := v.RunWorkflow(sagaWorkflow(3), o)
	if err == nil || !strings.Contains(err.Error(), "card declined") {
		t.Fatalf("err = %v", err)
	}
	if res.Verdict != "compensated" || res.Compensations != 3 {
		t.Fatalf("result = %+v", res)
	}
	if got := counts["unbook"].Load(); got != 3 {
		t.Fatalf("unbook executed %d times, want 3", got)
	}
	st, err := store.Load(res.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Sealed || st.Verdict != "compensated" || !st.Failed {
		t.Fatalf("journal state = %+v", st)
	}
	for _, key := range []string{"book:0@stage-0", "book:1@stage-0", "book:2@stage-0"} {
		if st.CompDone[key] != "ok" {
			t.Fatalf("comp %s = %q, want ok", key, st.CompDone[key])
		}
	}
}

func TestCompensationsExactlyOnceAcrossResume(t *testing.T) {
	counts := map[string]*atomic.Int64{}
	v := New(sagaRegistry(counts))
	store := openTestStore(t)

	// Crash mid-unwind, right after the first compensation commits.
	o := testOpts(func(o *RunOptions) {
		o.Durable = true
		o.Journal = store
		o.Faults = faults.NewPlan(1, faults.Crash{Point: "after-comp:0"})
	})
	res, err := v.RunWorkflow(sagaWorkflow(3), o)
	if !errors.Is(err, ErrCrashPoint) {
		t.Fatalf("err = %v, want ErrCrashPoint", err)
	}
	if got := counts["unbook"].Load(); got != 1 {
		t.Fatalf("unbook before crash = %d, want 1", got)
	}

	// The resume goes straight to the unwind and skips the journaled key.
	ro := testOpts(func(o *RunOptions) {
		o.Durable = true
		o.Journal = store
		o.Resume = res.RunID
	})
	rres, rerr := v.RunWorkflow(sagaWorkflow(3), ro)
	if rerr == nil || !strings.Contains(rerr.Error(), "card declined") {
		t.Fatalf("resume err = %v", rerr)
	}
	if rres.Verdict != "compensated" || rres.Compensations != 2 {
		t.Fatalf("resume result = %+v", rres)
	}
	if got := counts["unbook"].Load(); got != 3 {
		t.Fatalf("unbook total = %d, want 3 (exactly once per instance)", got)
	}
	if got := counts["book"].Load(); got != 3 {
		t.Fatalf("book re-executed: %d, want 3", got)
	}
	st, err := store.Load(rres.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Sealed || st.Verdict != "compensated" || len(st.CompDone) != 3 {
		t.Fatalf("journal state = %+v", st)
	}
}

func TestDurableRequiresJournalStore(t *testing.T) {
	v := New(countingRegistry(map[string]*atomic.Int64{}))
	// Durable (and Resume) without a journal store must fail loudly, not
	// degrade into a fresh non-durable run.
	for _, mutate := range []func(*RunOptions){
		func(o *RunOptions) { o.Durable = true },
		func(o *RunOptions) { o.Resume = "some-run" },
	} {
		_, err := v.RunWorkflow(pipelineWorkflow(2), testOpts(mutate))
		if err == nil || !strings.Contains(err.Error(), "Journal") {
			t.Fatalf("err = %v, want journal-required error", err)
		}
	}
}

// TestResumeIgnoresUncommittedSpills covers the torn-barrier window: a
// crash after a stage's slot-spilled records are journaled but before
// its stage-committed record lands. The resume re-executes that stage,
// so importing the orphaned spills would make the re-run collide on its
// own output slots (ErrSlotExists) and wrongly saga-unwind the run.
func TestResumeIgnoresUncommittedSpills(t *testing.T) {
	counts := map[string]*atomic.Int64{}
	v := New(countingRegistry(counts))
	store := openTestStore(t)

	// Crash right after stage 0 commits: produce is durable, double has
	// not run.
	o := durableOpts(store, func(o *RunOptions) {
		o.Faults = faults.NewPlan(1, faults.Crash{Point: "after-commit:0"})
	})
	res, err := v.RunWorkflow(pipelineWorkflow(2), o)
	if !errors.Is(err, ErrCrashPoint) {
		t.Fatalf("crashpoint: err = %v, want ErrCrashPoint", err)
	}
	id := res.RunID

	// Simulate the torn barrier: journal stage 1's slot-spilled records
	// (and persist the payloads) without the stage-committed record, as
	// a crash between the spill fsync and the commit append would.
	jr, _, err := store.Resume(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := jr.StageStarted(1); err != nil {
		t.Fatal(err)
	}
	spill := jr.Spill()
	for i := 0; i < 2; i++ {
		slot := Slot("double", i, "sum", 0)
		payload := make([]byte, 8)
		binary.LittleEndian.PutUint64(payload, uint64((i+1)*2))
		if err := spill.Put(slot, payload); err != nil {
			t.Fatal(err)
		}
		if err := jr.SlotSpilled(1, slot, 8, crc32.ChecksumIEEE(payload)); err != nil {
			t.Fatal(err)
		}
	}
	if err := spill.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	// The resume must re-execute stage 1 from scratch and ignore its
	// orphaned spills.
	ro := durableOpts(store, func(o *RunOptions) { o.Resume = id })
	rres, err := v.RunWorkflow(pipelineWorkflow(2), ro)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !rres.Resumed || rres.StagesSkipped != 1 || rres.Verdict != "ok" {
		t.Fatalf("resume result = %+v", rres)
	}
	if got := counts["produce"].Load(); got != 1 {
		t.Fatalf("produce executed %d times, want 1", got)
	}
	if got := counts["double"].Load(); got != 2 {
		t.Fatalf("double executed %d instances, want 2 (stage 1 re-runs)", got)
	}
	if got := binary.LittleEndian.Uint64(rres.Exports[Slot("sum", 0, "out", 0)]); got != 6 {
		t.Fatalf("resumed export = %d, want 6", got)
	}
}

// slowKV is an in-memory xfer.KVClient whose Set stalls on chosen keys,
// stretching one barrier's spill write to expose commit reordering.
type slowKV struct {
	delay func(key string) time.Duration
	mu    sync.Mutex
	m     map[string][]byte
}

func (k *slowKV) Set(key string, value []byte) error {
	if d := k.delay(key); d > 0 {
		time.Sleep(d)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.m == nil {
		k.m = map[string][]byte{}
	}
	k.m[key] = append([]byte(nil), value...)
	return nil
}

func (k *slowKV) Get(key string) ([]byte, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	v, ok := k.m[key]
	if !ok {
		return nil, errors.New("slowKV: no such key")
	}
	return append([]byte(nil), v...), nil
}

func (k *slowKV) Del(key string) (bool, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	_, ok := k.m[key]
	delete(k.m, key)
	return ok, nil
}

// readJournalRecords hand-decodes a journal file's length-prefixed
// record frames.
func readJournalRecords(t *testing.T, path string) []journal.Record {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var recs []journal.Record
	for off := 0; off+8 <= len(raw); {
		n := int(binary.LittleEndian.Uint32(raw[off : off+4]))
		if off+8+n > len(raw) {
			break
		}
		var rec journal.Record
		if err := json.Unmarshal(raw[off+8:off+8+n], &rec); err != nil {
			t.Fatalf("record at offset %d: %v", off, err)
		}
		recs = append(recs, rec)
		off += 8 + n
	}
	return recs
}

// TestAsyncBarrierCommitsInStageOrder pins the prefix invariant of the
// pipelined barrier: even when stage 0's spill write is much slower
// than the later stages' (a 150ms-per-Put kv store here), the
// stage-committed records must reach the journal in stage order — a
// crash must never find stage N+1 committed without stage N.
func TestAsyncBarrierCommitsInStageOrder(t *testing.T) {
	counts := map[string]*atomic.Int64{}
	v := New(countingRegistry(counts))
	kv := &slowKV{delay: func(key string) time.Duration {
		if strings.Contains(key, "produce:") {
			return 150 * time.Millisecond
		}
		return 0
	}}
	store, err := journal.Open(t.TempDir(), journal.Options{KV: kv})
	if err != nil {
		t.Fatal(err)
	}
	// No fault plan, so the run uses the async (pipelined) barrier.
	res, err := v.RunWorkflow(pipelineWorkflow(2), durableOpts(store, nil))
	if err != nil {
		t.Fatalf("durable run: %v", err)
	}
	if res.Verdict != "ok" {
		t.Fatalf("verdict = %q, want ok", res.Verdict)
	}
	var commits []int
	for _, rec := range readJournalRecords(t, filepath.Join(store.Dir(), res.RunID+".journal")) {
		if rec.Kind == journal.KindStageCommit {
			commits = append(commits, rec.Stage)
		}
	}
	if len(commits) != 3 {
		t.Fatalf("stage-committed records = %v, want 3", commits)
	}
	for i, si := range commits {
		if si != i {
			t.Fatalf("stage-committed order = %v, want [0 1 2]", commits)
		}
	}
}

func TestDurableNonCrashOutputMatchesPlain(t *testing.T) {
	// The journal must not change what a run computes.
	plainCounts := map[string]*atomic.Int64{}
	vp := New(countingRegistry(plainCounts))
	var plainOut bytes.Buffer
	pres, err := vp.RunWorkflow(pipelineWorkflow(2), testOpts(func(o *RunOptions) {
		o.Stdout = &plainOut
		o.ExportSlots = []string{Slot("sum", 0, "out", 0)}
	}))
	if err != nil {
		t.Fatal(err)
	}
	durCounts := map[string]*atomic.Int64{}
	vd := New(countingRegistry(durCounts))
	dres, err := vd.RunWorkflow(pipelineWorkflow(2), durableOpts(openTestStore(t), nil))
	if err != nil {
		t.Fatal(err)
	}
	slot := Slot("sum", 0, "out", 0)
	if !bytes.Equal(pres.Exports[slot], dres.Exports[slot]) {
		t.Fatalf("durable export %x != plain export %x", dres.Exports[slot], pres.Exports[slot])
	}
}
