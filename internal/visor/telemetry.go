package visor

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"alloystack/internal/metrics"
	"alloystack/internal/trace"
)

// Telemetry is the watchdog's always-on observability plane. One
// instance aggregates, per workflow:
//
//   - a constant-memory latency histogram with trace-ID exemplars,
//     rendered as real Prometheus histogram exposition on /metrics;
//   - tail-sampled tracing: every run records spans into a bounded
//     flight recorder, and the full Chrome-trace export is retained
//     (GET /traces/{id}) only for runs that failed, landed beyond the
//     configured latency quantile, or won the seeded base-rate draw;
//   - an SLO (latency objective + error budget, multi-window burn
//     rate) whose breach triggers an anomaly capture — CPU + heap
//     profiles and the triggering run's flight recorder snapshotted
//     into an artifacts directory — and flips /healthz to degraded.
//
// The nil *Telemetry is the disabled plane: every method no-ops, so
// the watchdog's hot path carries no conditionals.
type Telemetry struct {
	cfg     TelemetryConfig
	clock   func() time.Time
	sampler *trace.Sampler

	mu       sync.Mutex
	hists    map[string]*metrics.Histogram
	slos     map[string]*metrics.SLO
	breached map[string]bool // workflows inside a breach episode

	traces *traceStore

	retained  atomic.Int64
	dropped   atomic.Int64
	captures  atomic.Int64
	capturing atomic.Bool
	captureWG sync.WaitGroup
	lastCap   atomic.Value // string: most recent capture directory
}

// TelemetryConfig parameterises the plane. The zero value is usable:
// seeded sampler at the default rate, p99 tail retention, 32 retained
// traces, no SLO watching (Objective 0) and no capture directory.
type TelemetryConfig struct {
	// SamplerSeed/SampleRate drive the deterministic base-rate trace
	// retention draw. A zero SampleRate selects the default 0.01;
	// trace.RateOff (any negative value) disables the base-rate draw so
	// only failed and tail runs are retained.
	SamplerSeed int64
	SampleRate  float64
	// TailQuantile is the histogram quantile beyond which a run's trace
	// is always retained (default 0.99). Runs measured before the
	// workflow has MinTailCount observations never match the tail rule —
	// the estimate is not meaningful yet.
	TailQuantile float64
	// RetainedTraces bounds the Chrome-export store (default 32; FIFO
	// eviction).
	RetainedTraces int
	// FlightSpans sizes each run's flight recorder ring (default
	// trace.DefaultRecorderSize).
	FlightSpans int
	// SLO, when Objective > 0, enables per-workflow SLO tracking with
	// this shared configuration.
	SLO metrics.SLOConfig
	// CaptureDir, when set, receives one subdirectory per anomaly
	// capture: cpu.pprof, heap.pprof, flight.txt and trace.json.
	CaptureDir string
	// CaptureCPUProfile bounds the CPU profile window of a capture
	// (default 250ms).
	CaptureCPUProfile time.Duration
	// Clock supplies time for SLO burn windows (default time.Now).
	Clock func() time.Time
}

// minTailCount is how many observations a workflow's histogram needs
// before the tail-quantile retention rule engages.
const minTailCount = 16

func (c TelemetryConfig) withDefaults() TelemetryConfig {
	if c.SampleRate == 0 {
		c.SampleRate = 0.01
	}
	if c.TailQuantile <= 0 || c.TailQuantile >= 1 {
		c.TailQuantile = 0.99
	}
	if c.RetainedTraces <= 0 {
		c.RetainedTraces = 32
	}
	if c.FlightSpans <= 0 {
		c.FlightSpans = trace.DefaultRecorderSize
	}
	if c.CaptureCPUProfile <= 0 {
		c.CaptureCPUProfile = 250 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// NewTelemetry builds the plane.
func NewTelemetry(cfg TelemetryConfig) *Telemetry {
	cfg = cfg.withDefaults()
	return &Telemetry{
		cfg:      cfg,
		clock:    cfg.Clock,
		sampler:  trace.NewSampler(trace.SamplerConfig{Seed: cfg.SamplerSeed, Rate: cfg.SampleRate}),
		hists:    make(map[string]*metrics.Histogram),
		slos:     make(map[string]*metrics.SLO),
		breached: make(map[string]bool),
		traces:   newTraceStore(cfg.RetainedTraces),
	}
}

// StartRun hands out the always-on tracer for one invocation: spans
// flow into a fresh bounded flight recorder whether or not the trace
// is later retained. Returns nil on a nil plane.
func (t *Telemetry) StartRun(workflow string) *trace.Tracer {
	if t == nil {
		return nil
	}
	return trace.New("watchdog", trace.Options{
		Recorder: trace.NewRecorder(t.cfg.FlightSpans),
	})
}

// RunTelemetry reports what ObserveRun did with one finished run.
type RunTelemetry struct {
	Retained bool
	Reason   string
}

// hist returns the workflow's histogram, creating it on first use.
func (t *Telemetry) hist(workflow string) *metrics.Histogram {
	h, ok := t.hists[workflow]
	if !ok {
		h = metrics.NewHistogram()
		t.hists[workflow] = h
	}
	return h
}

// slo returns the workflow's SLO, creating it on first use; nil when
// SLO watching is disabled.
func (t *Telemetry) slo(workflow string) *metrics.SLO {
	if t.cfg.SLO.Objective <= 0 {
		return nil
	}
	s, ok := t.slos[workflow]
	if !ok {
		s = metrics.NewSLO(t.cfg.SLO, t.clock)
		t.slos[workflow] = s
	}
	return s
}

// ObserveRun folds one finished run into the plane: the tail-sampling
// decision (made against the histogram's state before this run, so the
// threshold is what a scraper saw), the histogram observation — with
// the trace ID as a bucket exemplar only when the export actually
// landed in the trace store, so a freshly scraped exemplar resolves
// via /traces/{id} (later FIFO eviction can still orphan an old
// exemplar; scrapers must tolerate a 404 there) — and the SLO, whose
// breach transition triggers an anomaly capture.
func (t *Telemetry) ObserveRun(workflow string, tracer *trace.Tracer, dur time.Duration, runErr error) RunTelemetry {
	if t == nil {
		return RunTelemetry{}
	}
	t.mu.Lock()
	h := t.hist(workflow)
	var tail time.Duration
	if h.Count() >= minTailCount {
		tail = h.Quantile(t.cfg.TailQuantile)
	}
	s := t.slo(workflow)
	t.mu.Unlock()

	dec := t.sampler.Decide(tracer.TraceID(), dur, tail, runErr != nil)
	stored := false
	if tracer.Enabled() {
		if dec.Keep {
			if data, err := trace.ChromeJSON(tracer); err == nil {
				stored = t.traces.put(tracer.TraceID(), data)
			}
		}
		if stored {
			t.retained.Add(1)
		} else {
			t.dropped.Add(1)
		}
	}

	// The exemplar is installed only once the export is in the store: a
	// keep decision whose export failed (disabled tracer, ChromeJSON
	// error, empty trace) must not advertise a trace ID that
	// /traces/{id} would 404.
	exemplar := ""
	if stored {
		exemplar = tracer.TraceID()
	}
	h.ObserveExemplar(dur, exemplar)

	if s != nil {
		s.Observe(dur, runErr != nil)
		st := s.Status()
		t.mu.Lock()
		newBreach := st.Breached && !t.breached[workflow]
		t.breached[workflow] = st.Breached
		t.mu.Unlock()
		if newBreach {
			t.capture(workflow, tracer)
		}
	}
	return RunTelemetry{Retained: dec.Keep, Reason: dec.Reason}
}

// capture snapshots the process on an SLO breach transition: CPU and
// heap profiles plus the triggering run's flight recorder and trace,
// written to a per-capture directory. At most one capture runs at a
// time; the profile window happens on a background goroutine so the
// breaching request is not held hostage.
func (t *Telemetry) capture(workflow string, tracer *trace.Tracer) {
	if t.cfg.CaptureDir == "" || !t.capturing.CompareAndSwap(false, true) {
		return
	}
	dir := filepath.Join(t.cfg.CaptureDir,
		fmt.Sprintf("%s-%d", sanitizeCaptureName(workflow), t.clock().UnixNano()))
	t.captureWG.Add(1)
	go func() {
		defer t.captureWG.Done()
		defer t.capturing.Store(false)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return
		}
		if f, err := os.Create(filepath.Join(dir, "cpu.pprof")); err == nil {
			if pprof.StartCPUProfile(f) == nil {
				time.Sleep(t.cfg.CaptureCPUProfile)
				pprof.StopCPUProfile()
			}
			f.Close()
		}
		if f, err := os.Create(filepath.Join(dir, "heap.pprof")); err == nil {
			pprof.Lookup("heap").WriteTo(f, 0)
			f.Close()
		}
		if f, err := os.Create(filepath.Join(dir, "flight.txt")); err == nil {
			tracer.FlightDump(f, fmt.Sprintf("SLO breach on workflow %q", workflow))
			f.Close()
		}
		if data, err := trace.ChromeJSON(tracer); err == nil && tracer.Enabled() {
			os.WriteFile(filepath.Join(dir, "trace.json"), data, 0o644)
		}
		t.captures.Add(1)
		t.lastCap.Store(dir)
	}()
}

// sanitizeCaptureName keeps capture directory names filesystem-safe.
func sanitizeCaptureName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, s)
}

// WaitCaptures blocks until in-flight anomaly captures finish (tests
// and shutdown paths).
func (t *Telemetry) WaitCaptures() {
	if t == nil {
		return
	}
	t.captureWG.Wait()
}

// Captures reports completed anomaly captures and the most recent
// capture directory.
func (t *Telemetry) Captures() (int64, string) {
	if t == nil {
		return 0, ""
	}
	dir, _ := t.lastCap.Load().(string)
	return t.captures.Load(), dir
}

// Retained reports (retained, dropped) trace-export outcomes so far:
// retained counts exports that actually landed in the store, dropped
// everything else (sampler drops and failed exports alike).
func (t *Telemetry) Retained() (int64, int64) {
	if t == nil {
		return 0, 0
	}
	return t.retained.Load(), t.dropped.Load()
}

// TraceJSON returns a retained run's Chrome trace export by trace ID.
func (t *Telemetry) TraceJSON(id string) ([]byte, bool) {
	if t == nil {
		return nil, false
	}
	return t.traces.get(id)
}

// TraceIDs lists the retained trace IDs, newest last.
func (t *Telemetry) TraceIDs() []string {
	if t == nil {
		return nil
	}
	return t.traces.ids()
}

// Degraded reports whether any workflow is inside an SLO breach
// episode, with the sorted offender list. Burn rates decay as windows
// roll forward, so the state is re-evaluated from the live SLOs on
// every read rather than latched.
func (t *Telemetry) Degraded() (bool, []string) {
	if t == nil {
		return false, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var bad []string
	for wf, s := range t.slos {
		st := s.Status()
		t.breached[wf] = st.Breached
		if st.Breached {
			bad = append(bad, wf)
		}
	}
	sort.Strings(bad)
	return len(bad) > 0, bad
}

// Quantile reports a workflow's current histogram quantile (0 when the
// workflow has no observations).
func (t *Telemetry) Quantile(workflow string, q float64) time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	h := t.hists[workflow]
	t.mu.Unlock()
	return h.Quantile(q)
}

// WriteMetrics renders the plane's exposition: per-workflow latency
// histograms with exemplars, SLO burn gauges, and the trace-retention
// counters. Called from the watchdog's /metrics handler.
func (t *Telemetry) WriteMetrics(pw *metrics.PromWriter) {
	if t == nil {
		return
	}
	t.mu.Lock()
	names := make([]string, 0, len(t.hists))
	for wf := range t.hists {
		names = append(names, wf)
	}
	sort.Strings(names)
	series := make([]metrics.LabeledHistogram, 0, len(names))
	for _, wf := range names {
		series = append(series, metrics.LabeledHistogram{
			Labels:   []string{"workflow", wf},
			Snapshot: t.hists[wf].Snapshot(),
		})
	}
	sloNames := make([]string, 0, len(t.slos))
	for wf := range t.slos {
		sloNames = append(sloNames, wf)
	}
	sort.Strings(sloNames)
	statuses := make(map[string]metrics.SLOStatus, len(sloNames))
	for _, wf := range sloNames {
		statuses[wf] = t.slos[wf].Status()
	}
	t.mu.Unlock()

	if len(series) > 0 {
		pw.HistogramFamily("alloystack_workflow_e2e_seconds",
			"End-to-end invocation latency per workflow.", series)
	}
	if len(sloNames) > 0 {
		pw.Header("alloystack_slo_burn_rate", "gauge",
			"Error-budget burn rate per workflow and window (1 = sustainable pace).")
		for _, wf := range sloNames {
			st := statuses[wf]
			pw.Value("alloystack_slo_burn_rate", st.ShortBurn, "workflow", wf, "window", "short")
			pw.Value("alloystack_slo_burn_rate", st.LongBurn, "workflow", wf, "window", "long")
		}
		pw.Header("alloystack_slo_breached", "gauge",
			"Whether the workflow's SLO is inside a breach episode (both windows burning).")
		for _, wf := range sloNames {
			v := 0.0
			if statuses[wf].Breached {
				v = 1.0
			}
			pw.Value("alloystack_slo_breached", v, "workflow", wf)
		}
	}
	retained, dropped := t.Retained()
	pw.Header("alloystack_traces_retained_total", "counter",
		"Run traces retained by the tail sampler (failed, tail or base-rate).")
	pw.Value("alloystack_traces_retained_total", float64(retained))
	pw.Header("alloystack_traces_dropped_total", "counter",
		"Run traces recorded but not retained.")
	pw.Value("alloystack_traces_dropped_total", float64(dropped))
	captures, _ := t.Captures()
	pw.Header("alloystack_anomaly_captures_total", "counter",
		"Anomaly captures written on SLO breach (profiles + flight recorder).")
	pw.Value("alloystack_anomaly_captures_total", float64(captures))
}

// traceStore is the bounded retained-trace map: trace ID to Chrome
// JSON, FIFO-evicted beyond cap.
type traceStore struct {
	mu    sync.Mutex
	cap   int
	order []string
	data  map[string][]byte
}

func newTraceStore(cap int) *traceStore {
	return &traceStore{cap: cap, data: make(map[string][]byte)}
}

// put stores one export, reporting whether it was actually retained so
// the caller can gate the histogram exemplar on resolvability.
func (ts *traceStore) put(id string, data []byte) bool {
	if id == "" || len(data) == 0 {
		return false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, ok := ts.data[id]; !ok {
		ts.order = append(ts.order, id)
		for len(ts.order) > ts.cap {
			delete(ts.data, ts.order[0])
			ts.order = ts.order[1:]
		}
	}
	ts.data[id] = data
	return true
}

func (ts *traceStore) get(id string) ([]byte, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	d, ok := ts.data[id]
	return d, ok
}

func (ts *traceStore) ids() []string {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]string, len(ts.order))
	copy(out, ts.order)
	return out
}
