package visor

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"alloystack/internal/asstd"
	"alloystack/internal/dag"
	"alloystack/internal/faults"
	"alloystack/internal/metrics"
	"alloystack/internal/trace"
	"alloystack/internal/xfer"
)

// phasedRegistry registers a function that charges measurable time to
// each Figure-15 stage through Env.TimeStage, so the trace's phase
// spans and the StageClock derive from the same measured windows.
func phasedRegistry() *Registry {
	r := NewRegistry()
	r.RegisterNative("phased", func(env *asstd.Env, ctx FuncContext) error {
		for _, st := range []metrics.Stage{
			metrics.StageReadInput, metrics.StageCompute, metrics.StageTransfer,
		} {
			if err := env.TimeStage(st, func() error {
				time.Sleep(2 * time.Millisecond)
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	})
	return r
}

func phasedWorkflow(instances int) *dag.Workflow {
	return &dag.Workflow{Name: "phased-wf", Functions: []dag.FuncSpec{
		{Name: "phased", Instances: instances},
	}}
}

// chromeDoc mirrors the subset of the Chrome trace_event format the
// tests inspect.
type chromeDoc struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Dur  float64 `json:"dur"`
	} `json:"traceEvents"`
	OtherData map[string]string `json:"otherData"`
}

// TestTraceAgreesWithStageClock checks the acceptance bar for the span
// plumbing: the per-stage totals summed from the exported Chrome JSON
// must agree with the StageClock breakdown within 1%. Both views are
// charged from the same (start, duration) window, so any drift means a
// phase is double-counted or dropped.
func TestTraceAgreesWithStageClock(t *testing.T) {
	tracer := trace.New("visor", trace.Options{})
	v := New(phasedRegistry())
	res, err := v.RunWorkflow(phasedWorkflow(2), testOpts(func(o *RunOptions) {
		o.Trace = tracer
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == "" || res.TraceID != tracer.TraceID() {
		t.Fatalf("TraceID = %q, tracer = %q", res.TraceID, tracer.TraceID())
	}

	data, err := trace.ChromeJSON(tracer)
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome JSON: %v", err)
	}
	phaseMicros := map[string]float64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Cat == trace.CatPhase {
			phaseMicros[ev.Name] += ev.Dur
		}
	}
	breakdown := res.Clock.Breakdown()
	for _, stage := range []string{"read-input", "compute", "transfer", "wait"} {
		clockMicros := float64(breakdown[stage]) / float64(time.Microsecond)
		got := phaseMicros[stage]
		if clockMicros == 0 {
			if got != 0 {
				t.Fatalf("stage %s: trace has %.1fµs, clock has none", stage, got)
			}
			continue
		}
		if diff := math.Abs(got-clockMicros) / clockMicros; diff > 0.01 {
			t.Fatalf("stage %s: trace %.1fµs vs clock %.1fµs (%.2f%% off)",
				stage, got, clockMicros, diff*100)
		}
	}
	if phaseMicros["read-input"] == 0 || phaseMicros["compute"] == 0 {
		t.Fatalf("phase spans missing: %v", phaseMicros)
	}
}

// TestTraceCapturesTransferSpans checks the data-plane decorator: a
// producer/consumer pair moving a slot through the env's installed
// transport yields CatXfer spans carrying the transport kind and the
// payload size.
func TestTraceCapturesTransferSpans(t *testing.T) {
	r := NewRegistry()
	r.RegisterNative("emit", func(env *asstd.Env, ctx FuncContext) error {
		return env.Transport().Send("edge", []byte("payload-bytes"))
	})
	r.RegisterNative("absorb", func(env *asstd.Env, ctx FuncContext) error {
		data, release, err := env.Transport().Recv("edge")
		if err != nil {
			return err
		}
		defer release()
		if string(data) != "payload-bytes" {
			return fmt.Errorf("got %q", data)
		}
		return nil
	})
	tracer := trace.New("visor", trace.Options{})
	v := New(r)
	w := &dag.Workflow{Name: "w", Functions: []dag.FuncSpec{
		{Name: "emit"},
		{Name: "absorb", DependsOn: []string{"emit"}},
	}}
	if _, err := v.RunWorkflow(w, testOpts(func(o *RunOptions) {
		o.Trace = tracer
	})); err != nil {
		t.Fatal(err)
	}
	var sends, recvs int
	for _, sd := range tracer.Spans() {
		if sd.Cat != trace.CatXfer {
			continue
		}
		if sd.Attrs["kind"] != xfer.KindRefpass {
			t.Fatalf("xfer span %q kind = %q: %+v", sd.Name, sd.Attrs["kind"], sd)
		}
		switch {
		case strings.HasPrefix(sd.Name, "send:"):
			sends++
			if sd.Attrs["bytes"] != fmt.Sprint(len("payload-bytes")) {
				t.Fatalf("send span bytes = %q", sd.Attrs["bytes"])
			}
		case strings.HasPrefix(sd.Name, "recv:"):
			recvs++
		}
	}
	if sends == 0 || recvs == 0 {
		t.Fatalf("transfer spans missing: sends=%d recvs=%d", sends, recvs)
	}
}

// TestFailedRunDumpsFlightRecorder drives a chaos plan past the retry
// budget and checks the automatic post-mortem: the dump must name the
// injected fault and the span that was active when it fired.
func TestFailedRunDumpsFlightRecorder(t *testing.T) {
	tracer := trace.New("visor", trace.Options{
		Recorder: trace.NewRecorder(64),
	})
	plan := faults.NewPlan(7, faults.PanicEvery{Func: "phased", N: 5})
	var out bytes.Buffer
	v := New(phasedRegistry())
	_, err := v.RunWorkflow(phasedWorkflow(1), testOpts(func(o *RunOptions) {
		o.Stdout = &out
		o.Trace = tracer
		o.Faults = plan
		o.MaxRetries = 1 // budget 1 < the 4 panics the plan injects
	}))
	if err == nil {
		t.Fatal("chaos run succeeded unexpectedly")
	}
	dump := out.String()
	if !strings.Contains(dump, "flight recorder") {
		t.Fatalf("no flight-recorder dump in output:\n%s", dump)
	}
	if !strings.Contains(dump, "injected panic") {
		t.Fatalf("dump does not report the injected fault:\n%s", dump)
	}
	if !strings.Contains(dump, "active span: phased[0]") {
		t.Fatalf("dump does not name the active span:\n%s", dump)
	}
}

// TestTraceStitchesAcrossNetTransport splits a chain across two visors
// bridged by the net transport and checks the importer adopts the
// exporter's trace ID: both halves render into one Chrome file under a
// single trace identifier.
func TestTraceStitchesAcrossNetTransport(t *testing.T) {
	w := hopChain(6)
	front, back, err := SplitAt(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	cross, err := CrossSlots(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	bridge := xfer.NewBridge()

	// Node 1: front subgraph, traced, boundary slots + trace ID shipped.
	tr1 := trace.New("node1", trace.Options{})
	exportPeer := bridge.Dial()
	defer exportPeer.Close()
	ro1 := DefaultRunOptions()
	ro1.CostScale = 0
	ro1.BufHeapSize = 8 << 20
	ro1.ExportSlots = cross
	ro1.ExportPeer = exportPeer
	ro1.Trace = tr1
	res1, err := New(chainRegistry(t)).RunWorkflow(front, ro1)
	if err != nil {
		t.Fatalf("front: %v", err)
	}

	// Node 2: back subgraph with its own tracer; the import path must
	// adopt node 1's trace ID off the bridge before pulling payloads.
	tr2 := trace.New("node2", trace.Options{})
	importPeer := bridge.Dial()
	defer importPeer.Close()
	var out bytes.Buffer
	ro2 := DefaultRunOptions()
	ro2.CostScale = 0
	ro2.BufHeapSize = 8 << 20
	ro2.ImportPeer = importPeer
	ro2.ImportNames = cross
	ro2.Stdout = &out
	ro2.Trace = tr2
	res2, err := New(chainRegistry(t)).RunWorkflow(back, ro2)
	if err != nil {
		t.Fatalf("back: %v", err)
	}
	if out.String() != "hops=6" {
		t.Fatalf("split result = %q", out.String())
	}
	if res1.TraceID == "" || res2.TraceID != res1.TraceID {
		t.Fatalf("trace not stitched: exporter %q, importer %q", res1.TraceID, res2.TraceID)
	}
	if tr2.TraceID() != tr1.TraceID() {
		t.Fatalf("tracer IDs differ: %q vs %q", tr1.TraceID(), tr2.TraceID())
	}

	// One stitched Chrome file holds both processes under one trace ID.
	var stitched bytes.Buffer
	if err := trace.ExportChrome(&stitched, tr1, tr2); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(stitched.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.OtherData["trace_id"] != res1.TraceID {
		t.Fatalf("stitched trace_id = %q, want %q", doc.OtherData["trace_id"], res1.TraceID)
	}
	procs := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			procs[ev.Name] = true
		}
	}
	// Both nodes' process-name metadata must be present.
	if len(doc.TraceEvents) == 0 {
		t.Fatal("stitched trace is empty")
	}
	if !strings.Contains(stitched.String(), "node1") || !strings.Contains(stitched.String(), "node2") {
		t.Fatalf("stitched trace missing a node's spans")
	}
}

// TestWatchdogTraceQueryAndMetrics drives the HTTP surface: ?trace=1
// returns the Chrome trace inline, and /metrics serves the Prometheus
// families. Concurrent scrapes racing Stop must be shutdown-safe (the
// -race run enforces that part).
func TestWatchdogTraceQueryAndMetrics(t *testing.T) {
	v := New(testRegistry(t))
	if err := v.RegisterWorkflow(pipelineWorkflow(2)); err != nil {
		t.Fatal(err)
	}
	wd := NewWatchdog(v)
	wd.OptionsFor = func(string) RunOptions { return testOpts(nil) }
	addr, err := wd.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post("http://"+addr+"/invoke/pipeline?trace=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var ir InvokeResponse
	err = json.NewDecoder(resp.Body).Decode(&ir)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ir.TraceID == "" || len(ir.Trace) == 0 {
		t.Fatalf("traced invoke returned no trace: %+v", ir)
	}
	var doc chromeDoc
	if err := json.Unmarshal(ir.Trace, &doc); err != nil {
		t.Fatalf("returned trace is not Chrome JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("returned trace has no events")
	}
	if ir.Transfer == "" {
		t.Fatal("traced invoke returned no transfer summary")
	}

	body := httpGetBody(t, "http://"+addr+"/metrics")
	for _, want := range []string{
		"alloystack_watchdog_invocations_total 1",
		"alloystack_watchdog_invoke_latency_seconds_count 1",
		"alloystack_watchdog_transport_bytes_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}

	// Scrapes racing shutdown: Stop must not race handler state.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get("http://" + addr + "/metrics")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	if err := wd.Stop(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestTracingDisabledChangesNothing re-runs the traced pipeline with a
// nil tracer and checks the result still carries no trace artifacts —
// the no-op path the bench gate relies on.
func TestTracingDisabledChangesNothing(t *testing.T) {
	v := New(testRegistry(t))
	var out bytes.Buffer
	res, err := v.RunWorkflow(pipelineWorkflow(4), testOpts(func(o *RunOptions) {
		o.Stdout = &out
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID != "" {
		t.Fatalf("untraced run has TraceID %q", res.TraceID)
	}
	if out.String() != "total=20" {
		t.Fatalf("output = %q", out.String())
	}
}
