package visor

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Watchdog is the HTTP server that listens for external invocation
// events and triggers workflow execution (paper §3.3: "the watchdog is
// an HTTP server that listens for external invocation events"). Each
// AlloyStack process runs one watchdog; a gateway load-balances across
// processes.
type Watchdog struct {
	visor *Visor
	// OptionsFor builds the run options for an invocation; defaults to
	// DefaultRunOptions. The harness injects per-experiment resources
	// (disk images, hubs) here.
	OptionsFor func(workflow string) RunOptions

	srv       *http.Server
	ln        net.Listener
	inflight  atomic.Int64
	completed atomic.Int64
}

// InvokeResponse is the JSON reply to an invocation.
type InvokeResponse struct {
	Workflow    string  `json:"workflow"`
	E2EMillis   float64 `json:"e2e_ms"`
	ColdStartMs float64 `json:"cold_start_ms"`
	MemPeak     uint64  `json:"mem_peak_bytes"`
	Error       string  `json:"error,omitempty"`
}

// NewWatchdog wraps v in an HTTP front end.
func NewWatchdog(v *Visor) *Watchdog {
	return &Watchdog{visor: v}
}

// Start listens on addr ("127.0.0.1:0" for ephemeral) and serves until
// Stop. It returns the bound address.
func (wd *Watchdog) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	wd.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/invoke/", wd.handleInvoke)
	mux.HandleFunc("/healthz", wd.handleHealth)
	mux.HandleFunc("/workflows", wd.handleList)
	wd.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go wd.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Stop shuts the server down.
func (wd *Watchdog) Stop() error {
	if wd.srv == nil {
		return nil
	}
	return wd.srv.Close()
}

// Addr returns the bound address.
func (wd *Watchdog) Addr() string {
	if wd.ln == nil {
		return ""
	}
	return wd.ln.Addr().String()
}

// Inflight reports currently executing invocations.
func (wd *Watchdog) Inflight() int64 { return wd.inflight.Load() }

// Completed reports total completed invocations.
func (wd *Watchdog) Completed() int64 { return wd.completed.Load() }

func (wd *Watchdog) handleInvoke(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/invoke/")
	if name == "" {
		http.Error(w, "missing workflow name", http.StatusBadRequest)
		return
	}
	opts := DefaultRunOptions()
	if wd.OptionsFor != nil {
		opts = wd.OptionsFor(name)
	}
	wd.inflight.Add(1)
	res, err := wd.visor.Invoke(name, opts)
	wd.inflight.Add(-1)
	wd.completed.Add(1)

	resp := InvokeResponse{Workflow: name}
	status := http.StatusOK
	if err != nil {
		resp.Error = err.Error()
		status = http.StatusInternalServerError
		if err != nil && strings.Contains(err.Error(), "not registered") {
			status = http.StatusNotFound
		}
	} else {
		resp.E2EMillis = float64(res.E2E) / float64(time.Millisecond)
		resp.ColdStartMs = float64(res.ColdStart) / float64(time.Millisecond)
		resp.MemPeak = res.MemPeak
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp)
}

func (wd *Watchdog) handleHealth(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintf(w, "ok inflight=%d completed=%d\n", wd.Inflight(), wd.Completed())
}

func (wd *Watchdog) handleList(w http.ResponseWriter, r *http.Request) {
	wd.visor.mu.RLock()
	names := make([]string, 0, len(wd.visor.workflows))
	for n := range wd.visor.workflows {
		names = append(names, n)
	}
	wd.visor.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(names)
}
