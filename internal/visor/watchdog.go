package visor

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"alloystack/internal/dag"
	"alloystack/internal/journal"
	"alloystack/internal/metrics"
	"alloystack/internal/pool"
	"alloystack/internal/sched"
	"alloystack/internal/trace"
)

// Watchdog is the HTTP server that listens for external invocation
// events and triggers workflow execution (paper §3.3: "the watchdog is
// an HTTP server that listens for external invocation events"). Each
// AlloyStack process runs one watchdog; a gateway load-balances across
// processes.
type Watchdog struct {
	visor *Visor
	// OptionsFor builds the run options for an invocation; defaults to
	// DefaultRunOptions. The harness injects per-experiment resources
	// (disk images, hubs) here.
	OptionsFor func(workflow string) RunOptions

	// StopGrace bounds how long Stop waits for in-flight invocations to
	// drain before aborting them (default 10s).
	StopGrace time.Duration

	// MaxInflight caps concurrently executing invocations with a bare
	// counting semaphore: requests over the limit are shed immediately
	// with 429 + Retry-After. Zero means unlimited. Superseded by Sched
	// when that is set.
	MaxInflight int64

	// Sched, when non-nil, replaces the MaxInflight semaphore with full
	// admission control: per-workflow FIFO queues, weighted-fair
	// dispatch, queue-depth caps and deadline-aware rejection. Shed
	// requests get 429 with a load-derived Retry-After.
	Sched *sched.Scheduler

	// Pools, when non-nil, serves invocations from warm snapshot/fork
	// instances when a pool exists for the workflow. Clients opt out per
	// request with ?warm=0.
	Pools *pool.Manager

	// Journal, when non-nil, enables durable runs: POST /invoke/X?durable=1
	// journals the run, GET /runs lists journaled runs, and POST
	// /runs/{id}/resume re-admits a crashed run through the scheduler and
	// continues it from its last committed stage.
	Journal *journal.Store

	// NodeID is this node's routing identity on the cluster ring. The
	// gateway hashes it; it must be stable across restarts for ring
	// assignments to survive a node bounce (default: the bound address).
	NodeID string

	// PoolBuilder, when non-nil, lets POST /pools/prewarm build and seal
	// a warm pool for a workflow this node was asked to pre-warm. It
	// returns ok=false for workflows that cannot be pooled here.
	PoolBuilder func(w *dag.Workflow) (pool.Spec, pool.Config, bool)

	// Telemetry, when non-nil, is the always-on observability plane:
	// every invocation runs under a flight-recorder tracer, tail-sampled
	// trace exports are served from /traces/{id}, per-workflow latency
	// histograms and SLO burn rates join /metrics, and an SLO breach
	// flips /healthz to degraded and snapshots profiles. Nil keeps the
	// watchdog exactly as before (the nil *Telemetry no-ops).
	Telemetry *Telemetry

	resumed atomic.Int64

	// Cluster plane: the spec server's listener, the one-build-at-a-time
	// pre-warm guard, and the pools-built-by-prewarm counter.
	specLn    net.Listener
	prewarmMu sync.Mutex
	prewarmed atomic.Int64

	srv       *http.Server
	ln        net.Listener
	inflight  atomic.Int64
	completed atomic.Int64
	failures  atomic.Int64
	retries   atomic.Int64
	shed      atomic.Int64
	sem       atomic.Int64
	memPeak   atomic.Uint64

	// lat/transfer aggregate per-invocation observations for /metrics:
	// a constant-memory e2e latency histogram (with trace exemplars for
	// retained runs) and the run data planes' transfer counters.
	lat      *metrics.Histogram
	transfer *metrics.TransportStats
}

// InvokeResponse is the JSON reply to an invocation.
type InvokeResponse struct {
	Workflow    string  `json:"workflow"`
	E2EMillis   float64 `json:"e2e_ms"`
	ColdStartMs float64 `json:"cold_start_ms"`
	MemPeak     uint64  `json:"mem_peak_bytes"`
	Retries     int     `json:"retries,omitempty"`
	// WarmStart reports the invocation booted from a pooled
	// snapshot/fork clone; QueueWaitMs is time spent in admission.
	WarmStart   bool    `json:"warm_start,omitempty"`
	QueueWaitMs float64 `json:"queue_wait_ms,omitempty"`
	Error       string  `json:"error,omitempty"`
	// TraceID/Trace/Transfer are present when the invocation was traced
	// (?trace=1): the trace identifier, the Chrome trace_event JSON for
	// the run (Perfetto-loadable as-is), and the rendered per-transport
	// counter table.
	TraceID  string          `json:"trace_id,omitempty"`
	Trace    json.RawMessage `json:"trace,omitempty"`
	Transfer string          `json:"transfer,omitempty"`
	// RunID/Resumed/StagesSkipped/Compensations/Verdict describe durable
	// runs (journaled invocations and resumes).
	RunID         string `json:"run_id,omitempty"`
	Resumed       bool   `json:"resumed,omitempty"`
	StagesSkipped int    `json:"stages_skipped,omitempty"`
	Compensations int    `json:"compensations,omitempty"`
	Verdict       string `json:"verdict,omitempty"`
}

// errWatchdogBusy is the semaphore-mode shed error.
var errWatchdogBusy = errors.New("visor: watchdog at max inflight")

// reject sheds an invocation with 429 Too Many Requests and a
// Retry-After hint so well-behaved clients (and the gateway) back off.
func (wd *Watchdog) reject(w http.ResponseWriter, name string, err error, retryAfter time.Duration) {
	secs := int(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	json.NewEncoder(w).Encode(InvokeResponse{Workflow: name, Error: err.Error()})
}

// NewWatchdog wraps v in an HTTP front end.
func NewWatchdog(v *Visor) *Watchdog {
	return &Watchdog{
		visor:    v,
		lat:      metrics.NewHistogram(),
		transfer: metrics.NewTransportStats(),
	}
}

// Start listens on addr ("127.0.0.1:0" for ephemeral) and serves until
// Stop. It returns the bound address.
func (wd *Watchdog) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	wd.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/invoke/", wd.handleInvoke)
	mux.HandleFunc("/healthz", wd.handleHealth)
	mux.HandleFunc("/workflows", wd.handleList)
	mux.HandleFunc("/pools", wd.handlePools)
	mux.HandleFunc("/pools/prewarm", wd.handlePrewarm)
	mux.HandleFunc("/cluster", wd.handleCluster)
	mux.HandleFunc("/runs", wd.handleRuns)
	mux.HandleFunc("/runs/", wd.handleRunResume)
	mux.HandleFunc("/metrics", wd.handleMetrics)
	mux.HandleFunc("/traces/", wd.handleTrace)
	// Profiling endpoints for anomaly debugging: the custom mux does not
	// inherit net/http's DefaultServeMux registrations, so wire the pprof
	// handlers explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	wd.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go wd.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Stop shuts the server down gracefully: in-flight invocations drain
// for up to StopGrace before being aborted, so a node restart does not
// kill running workflows mid-flight.
func (wd *Watchdog) Stop() error {
	if wd.specLn != nil {
		wd.specLn.Close()
		wd.specLn = nil
	}
	if wd.srv == nil {
		return nil
	}
	grace := wd.StopGrace
	if grace <= 0 {
		grace = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := wd.srv.Shutdown(ctx); err != nil {
		// Grace expired with requests still running: abort them.
		return wd.srv.Close()
	}
	return nil
}

// Addr returns the bound address.
func (wd *Watchdog) Addr() string {
	if wd.ln == nil {
		return ""
	}
	return wd.ln.Addr().String()
}

// Inflight reports currently executing invocations.
func (wd *Watchdog) Inflight() int64 { return wd.inflight.Load() }

// Completed reports total completed invocations.
func (wd *Watchdog) Completed() int64 { return wd.completed.Load() }

func (wd *Watchdog) handleInvoke(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/invoke/")
	if name == "" {
		http.Error(w, "missing workflow name", http.StatusBadRequest)
		return
	}
	opts := DefaultRunOptions()
	if wd.OptionsFor != nil {
		opts = wd.OptionsFor(name)
	}
	if opts.Ctx == nil {
		// A disconnected client cancels the invocation it requested.
		opts.Ctx = r.Context()
	}

	// Admission: either the full scheduler (fair queues, deadline-aware)
	// or the bare MaxInflight semaphore. Both shed with 429 so the
	// gateway can fail over to another backend.
	if wd.Sched != nil {
		grant, err := wd.Sched.Admit(opts.Ctx, name, opts.Deadline)
		if err != nil {
			wd.shed.Add(1)
			wd.reject(w, name, err, wd.Sched.RetryAfter())
			return
		}
		defer grant.Release()
		opts.QueueWait = grant.Wait
	} else if wd.MaxInflight > 0 {
		if n := wd.sem.Add(1); n > wd.MaxInflight {
			wd.sem.Add(-1)
			wd.shed.Add(1)
			wd.reject(w, name, errWatchdogBusy, time.Second)
			return
		}
		defer wd.sem.Add(-1)
	}

	// Warm pools: boot from a snapshot/fork clone when a pool serves
	// this workflow, unless the client asked for a cold boot (?warm=0).
	if wd.Pools != nil && r.URL.Query().Get("warm") != "0" {
		if p := wd.Pools.Get(name); p != nil {
			opts.Pool = p
			opts.WarmStart = true
		}
	}
	// ?durable=1 journals this run through the watchdog's store so a
	// crash mid-run is resumable via POST /runs/{id}/resume. A durable
	// configuration from OptionsFor wins.
	if wd.Journal != nil && !opts.Durable && r.URL.Query().Get("durable") == "1" {
		opts.Durable = true
		opts.Journal = wd.Journal
	}
	// ?trace=1 turns on span collection for this invocation; the span
	// tree comes back in the response as Chrome trace_event JSON. A
	// tracer supplied by OptionsFor wins (the harness keeps ownership).
	tracer := opts.Trace
	if tracer == nil && r.URL.Query().Get("trace") == "1" {
		tracer = trace.New("watchdog", trace.Options{
			Recorder: trace.NewRecorder(trace.DefaultRecorderSize),
		})
		opts.Trace = tracer
	}
	// userTrace: the client (or harness) asked for this trace, so the
	// Chrome export goes inline in the response. When neither did, the
	// telemetry plane still traces the run into a bounded flight recorder
	// and decides retention after the fact (tail sampling).
	userTrace := tracer != nil
	if !userTrace {
		if t := wd.Telemetry.StartRun(name); t != nil {
			tracer = t
			opts.Trace = t
		}
	}
	wd.inflight.Add(1)
	invStart := time.Now()
	res, err := wd.visor.Invoke(name, opts)
	invDur := time.Since(invStart)
	wd.inflight.Add(-1)
	wd.completed.Add(1)
	rt := wd.Telemetry.ObserveRun(name, tracer, invDur, err)
	if rt.Retained {
		wd.lat.ObserveExemplar(invDur, tracer.TraceID())
	} else {
		wd.lat.Observe(invDur)
	}
	if res != nil {
		wd.retries.Add(int64(res.Retries))
		wd.transfer.Merge(res.Transfer)
		for {
			cur := wd.memPeak.Load()
			if res.MemPeak <= cur || wd.memPeak.CompareAndSwap(cur, res.MemPeak) {
				break
			}
		}
	}

	resp := InvokeResponse{Workflow: name}
	status := http.StatusOK
	if err != nil {
		wd.failures.Add(1)
		resp.Error = err.Error()
		switch {
		case errors.Is(err, ErrUnknownWorkflow) || errors.Is(err, ErrUnknownFunction):
			status = http.StatusNotFound
		case errors.Is(err, ErrRejected):
			// A statically rejected guest image is the caller's fault
			// and will never succeed on retry.
			status = http.StatusForbidden
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		default:
			status = http.StatusInternalServerError
		}
	} else {
		resp.E2EMillis = float64(res.E2E) / float64(time.Millisecond)
		resp.ColdStartMs = float64(res.ColdStart) / float64(time.Millisecond)
		resp.MemPeak = res.MemPeak
		resp.Retries = res.Retries
		resp.WarmStart = res.WarmStart
		resp.QueueWaitMs = float64(res.QueueWait) / float64(time.Millisecond)
		resp.TraceID = res.TraceID
		resp.Transfer = res.Transfer.String()
	}
	if res != nil {
		resp.RunID = res.RunID
		resp.Resumed = res.Resumed
		resp.StagesSkipped = res.StagesSkipped
		resp.Compensations = res.Compensations
		resp.Verdict = res.Verdict
	}
	if userTrace && tracer.Enabled() {
		if data, terr := trace.ChromeJSON(tracer); terr == nil {
			resp.Trace = data
		}
	}
	if !userTrace && tracer.Enabled() {
		// Surface the always-on trace ID so clients can fetch the export
		// from /traces/{id} if the sampler retained it.
		resp.TraceID = tracer.TraceID()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp)
}

// handleTrace serves GET /traces/{id}: the Chrome trace_event JSON of a
// run the tail sampler retained. 404 for dropped or unknown IDs.
func (wd *Watchdog) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/traces/")
	if id == "" {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(wd.Telemetry.TraceIDs())
		return
	}
	data, ok := wd.Telemetry.TraceJSON(id)
	if !ok {
		http.Error(w, "trace not retained", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleMetrics serves the metrics exposition: invocation counters,
// the end-to-end latency digest and the aggregated transport counters
// across every run this watchdog has driven. The dialect is negotiated
// from the Accept header — OpenMetrics scrapes get histogram exemplar
// suffixes, plain 0.0.4 scrapes get an exemplar-free exposition the
// stock text parser accepts.
func (wd *Watchdog) handleMetrics(w http.ResponseWriter, r *http.Request) {
	pw, ctype := metrics.NegotiateWriter(w, r.Header.Get("Accept"))
	w.Header().Set("Content-Type", ctype)
	pw.Header("alloystack_watchdog_invocations_total", "counter",
		"Completed workflow invocations.")
	pw.Value("alloystack_watchdog_invocations_total", float64(wd.Completed()))
	pw.Header("alloystack_watchdog_failures_total", "counter",
		"Invocations that returned an error.")
	pw.Value("alloystack_watchdog_failures_total", float64(wd.failures.Load()))
	pw.Header("alloystack_watchdog_retries_total", "counter",
		"Function restarts absorbed by fault tolerance.")
	pw.Value("alloystack_watchdog_retries_total", float64(wd.retries.Load()))
	pw.Header("alloystack_watchdog_inflight", "gauge",
		"Invocations currently executing.")
	pw.Value("alloystack_watchdog_inflight", float64(wd.Inflight()))
	pw.Header("alloystack_watchdog_mem_peak_bytes", "gauge",
		"Largest WFD peak mapped memory observed.")
	pw.Value("alloystack_watchdog_mem_peak_bytes", float64(wd.memPeak.Load()))
	pw.Header("alloystack_watchdog_shed_total", "counter",
		"Invocations rejected by admission control (429).")
	pw.Value("alloystack_watchdog_shed_total", float64(wd.shed.Load()))
	pw.Header("alloystack_scan_rejects_total", "counter",
		"Invocations rejected by the static guest-image scan (403).")
	pw.Value("alloystack_scan_rejects_total", float64(wd.visor.ScanRejects()))
	if wd.Sched != nil {
		st := wd.Sched.Stats()
		pw.Header("alloystack_sched_backlog", "gauge",
			"Requests queued behind the concurrency limit.")
		pw.Value("alloystack_sched_backlog", float64(st.Backlog))
		pw.Header("alloystack_sched_admitted_total", "counter",
			"Requests granted an execution slot.")
		pw.Value("alloystack_sched_admitted_total", float64(st.Admitted))
		pw.Header("alloystack_sched_deadlined_total", "counter",
			"Requests rejected because their deadline could not be met.")
		pw.Value("alloystack_sched_deadlined_total", float64(st.Deadlined))
		pw.Header("alloystack_sched_queue_wait_max_ms", "gauge",
			"Largest admission queue wait observed.")
		pw.Value("alloystack_sched_queue_wait_max_ms", st.MaxWaitMs)
	}
	if wd.Pools != nil {
		stats := wd.Pools.Stats()
		pw.Header("alloystack_pool_warm_instances", "gauge",
			"Idle warm clones ready to serve.")
		for _, ps := range stats {
			pw.Value("alloystack_pool_warm_instances", float64(ps.Warm),
				"workflow", ps.Workflow)
		}
		pw.Header("alloystack_pool_hits_total", "counter",
			"Invocations served from a warm clone.")
		for _, ps := range stats {
			pw.Value("alloystack_pool_hits_total", float64(ps.Hits),
				"workflow", ps.Workflow)
		}
		pw.Header("alloystack_pool_misses_total", "counter",
			"Invocations that fell back to a cold boot.")
		for _, ps := range stats {
			pw.Value("alloystack_pool_misses_total", float64(ps.Misses),
				"workflow", ps.Workflow)
		}
	}
	if wd.Journal != nil {
		js := wd.Journal.Stats()
		pw.Header("alloystack_journal_appends_total", "counter",
			"Write-ahead journal records appended.")
		pw.Value("alloystack_journal_appends_total", float64(js.Appends))
		pw.Header("alloystack_journal_bytes", "counter",
			"Bytes written to run journals (frames included).")
		pw.Value("alloystack_journal_bytes", float64(js.Bytes))
		pw.Header("alloystack_runs_resumed_total", "counter",
			"Journaled runs re-opened for resume.")
		pw.Value("alloystack_runs_resumed_total", float64(js.Resumes))
		pw.Header("alloystack_compensations_total", "counter",
			"Saga compensation handlers executed, by result.")
		pw.Value("alloystack_compensations_total", float64(js.CompOK), "result", "ok")
		pw.Value("alloystack_compensations_total", float64(js.CompFailed), "result", "failed")
	}
	pw.Histogram("alloystack_watchdog_invoke_latency_seconds",
		"End-to-end invocation latency across all workflows.", wd.lat)
	pw.Transport("alloystack_watchdog_transport", wd.transfer)
	pw.BuildInfo("alloystack_build_info", metrics.CurrentBuild())
	wd.Telemetry.WriteMetrics(pw)
	pw.Finish()
}

// handlePools serves warm-pool statistics as JSON (asctl pools).
func (wd *Watchdog) handlePools(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if wd.Pools == nil {
		w.Write([]byte("[]\n"))
		return
	}
	json.NewEncoder(w).Encode(wd.Pools.Stats())
}

// handleRuns lists the journaled runs as JSON (asctl runs).
func (wd *Watchdog) handleRuns(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if wd.Journal == nil {
		w.Write([]byte("[]\n"))
		return
	}
	runs, err := wd.Journal.List()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if runs == nil {
		runs = []journal.Summary{}
	}
	json.NewEncoder(w).Encode(runs)
}

// handleRunResume serves POST /runs/{id}/resume: replay the journal,
// re-admit through the scheduler (a resume competes for capacity like
// any fresh invocation), and continue the run from its last committed
// stage. Sealed runs refuse with 409.
func (wd *Watchdog) handleRunResume(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/runs/")
	id, tail, ok := strings.Cut(rest, "/")
	if !ok || tail != "resume" || id == "" {
		http.Error(w, "want /runs/{id}/resume", http.StatusNotFound)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if wd.Journal == nil {
		http.Error(w, "no journal configured", http.StatusNotImplemented)
		return
	}
	st, err := wd.Journal.Load(id)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, journal.ErrNotFound) {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	if st.Sealed {
		http.Error(w, fmt.Sprintf("run %s is sealed (verdict %q)", id, st.Verdict),
			http.StatusConflict)
		return
	}
	spec := st.Spec
	if spec == nil {
		// Journal predates spec records: fall back to the registry.
		if spec, err = wd.visor.Workflow(st.Workflow); err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
	}

	opts := DefaultRunOptions()
	if wd.OptionsFor != nil {
		opts = wd.OptionsFor(st.Workflow)
	}
	if opts.Ctx == nil {
		opts.Ctx = r.Context()
	}
	opts.Durable = true
	opts.Journal = wd.Journal
	opts.Resume = id

	if wd.Sched != nil {
		grant, err := wd.Sched.Admit(opts.Ctx, st.Workflow, opts.Deadline)
		if err != nil {
			wd.shed.Add(1)
			wd.reject(w, st.Workflow, err, wd.Sched.RetryAfter())
			return
		}
		defer grant.Release()
		opts.QueueWait = grant.Wait
	}

	wd.inflight.Add(1)
	invStart := time.Now()
	res, err := wd.visor.RunWorkflow(spec, opts)
	wd.lat.Observe(time.Since(invStart))
	wd.inflight.Add(-1)
	wd.completed.Add(1)
	wd.resumed.Add(1)

	resp := InvokeResponse{Workflow: st.Workflow, RunID: id}
	status := http.StatusOK
	if err != nil {
		wd.failures.Add(1)
		resp.Error = err.Error()
		switch {
		case errors.Is(err, journal.ErrSealed):
			status = http.StatusConflict
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		default:
			status = http.StatusInternalServerError
		}
	} else {
		resp.E2EMillis = float64(res.E2E) / float64(time.Millisecond)
		resp.ColdStartMs = float64(res.ColdStart) / float64(time.Millisecond)
		resp.MemPeak = res.MemPeak
		resp.QueueWaitMs = float64(res.QueueWait) / float64(time.Millisecond)
	}
	if res != nil {
		resp.Resumed = res.Resumed
		resp.StagesSkipped = res.StagesSkipped
		resp.Compensations = res.Compensations
		resp.Verdict = res.Verdict
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp)
}

// Shed reports invocations rejected by admission control.
func (wd *Watchdog) Shed() int64 { return wd.shed.Load() }

func (wd *Watchdog) handleHealth(w http.ResponseWriter, r *http.Request) {
	// Degraded (SLO breach in progress) still answers 200 — the node can
	// serve — but leads with "degraded" so the gateway's health loop can
	// deprioritise it in backend rotation.
	if bad, wfs := wd.Telemetry.Degraded(); bad {
		fmt.Fprintf(w, "degraded workflows=%s inflight=%d completed=%d\n",
			strings.Join(wfs, ","), wd.Inflight(), wd.Completed())
		return
	}
	fmt.Fprintf(w, "ok inflight=%d completed=%d\n", wd.Inflight(), wd.Completed())
}

func (wd *Watchdog) handleList(w http.ResponseWriter, r *http.Request) {
	wd.visor.mu.RLock()
	names := make([]string, 0, len(wd.visor.workflows))
	for n := range wd.visor.workflows {
		names = append(names, n)
	}
	wd.visor.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(names)
}
