package visor

import (
	"errors"
	"testing"

	"alloystack/internal/asstd"
	"alloystack/internal/dag"
)

// diamond builds a → {b, c} → d: the smallest workflow where one cut
// severs two parallel edges and the other leaves a join with both its
// feeding edges on the far side.
func diamond() *dag.Workflow {
	return &dag.Workflow{
		Name: "diamond",
		Functions: []dag.FuncSpec{
			{Name: "a"},
			{Name: "b", DependsOn: []string{"a"}},
			{Name: "c", DependsOn: []string{"a"}},
			{Name: "d", DependsOn: []string{"b", "c"}},
		},
	}
}

// TestSplitAtDiamondAcrossCut covers diamond dependencies spanning the
// cut: severed edges become import-fed roots, edges wholly on the back
// side survive, and CrossSlots names exactly the crossing pairs.
func TestSplitAtDiamondAcrossCut(t *testing.T) {
	w := diamond()

	// Cut after stage 0: both a→b and a→c cross; b and c become roots
	// while d keeps its same-side join on b and c.
	front, back, err := SplitAt(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(front.Functions) != 1 || front.Functions[0].Name != "a" {
		t.Fatalf("front = %+v, want just a", front.Functions)
	}
	deps := make(map[string][]string)
	for _, f := range back.Functions {
		deps[f.Name] = f.DependsOn
	}
	if len(deps["b"]) != 0 || len(deps["c"]) != 0 {
		t.Fatalf("import-fed roots kept severed deps: b=%v c=%v", deps["b"], deps["c"])
	}
	if len(deps["d"]) != 2 {
		t.Fatalf("d lost same-side deps across the cut: %v", deps["d"])
	}
	slots, err := CrossSlots(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{Slot("a", 0, "b", 0): true, Slot("a", 0, "c", 0): true}
	if len(slots) != len(want) {
		t.Fatalf("cross slots = %v, want the two a→{b,c} pairs", slots)
	}
	for _, s := range slots {
		if !want[s] {
			t.Fatalf("unexpected cross slot %q (want %v)", s, want)
		}
	}

	// Cut before the join: b→d and c→d cross, d is the lone import-fed
	// root of the back subgraph.
	front, back, err = SplitAt(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(front.Functions) != 3 || len(back.Functions) != 1 {
		t.Fatalf("split sizes = %d/%d, want 3/1", len(front.Functions), len(back.Functions))
	}
	if d := back.Functions[0]; d.Name != "d" || len(d.DependsOn) != 0 {
		t.Fatalf("back root = %+v, want d with no deps", d)
	}
	slots, err = CrossSlots(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	want = map[string]bool{Slot("b", 0, "d", 0): true, Slot("c", 0, "d", 0): true}
	if len(slots) != len(want) {
		t.Fatalf("cross slots = %v, want the two {b,c}→d pairs", slots)
	}
	for _, s := range slots {
		if !want[s] {
			t.Fatalf("unexpected cross slot %q (want %v)", s, want)
		}
	}
}

// TestSplitRunNoSlotsCross runs a split diamond whose functions never
// register any boundary buffer: every candidate slot is unused, so the
// front exports nothing, the back imports nothing, and both halves
// still run clean — the bridge degrades to a no-op when no data
// actually crosses the cut.
func TestSplitRunNoSlotsCross(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"a", "b", "c", "d"} {
		r.RegisterNative(name, func(env *asstd.Env, _ FuncContext) error {
			_, err := asstd.Now(env)
			return err
		})
	}
	v := New(r)
	w := diamond()
	front, back, err := SplitAt(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	cross, err := CrossSlots(w, 1)
	if err != nil {
		t.Fatal(err)
	}

	ro := DefaultRunOptions()
	ro.CostScale = 0
	ro.BufHeapSize = 4 << 20
	ro.ExportSlots = cross
	res, err := v.RunWorkflow(front, ro)
	if err != nil {
		t.Fatalf("front: %v", err)
	}
	if len(res.Exports) != 0 {
		t.Fatalf("exports = %v, want none (no slot was registered)", res.Exports)
	}

	ro = DefaultRunOptions()
	ro.CostScale = 0
	ro.BufHeapSize = 4 << 20
	ro.ImportSlots = res.Exports
	if _, err := v.RunWorkflow(back, ro); err != nil {
		t.Fatalf("back with empty imports: %v", err)
	}
}

// TestSplitRejectsCycles covers cycle validation around the cut: a
// cyclic workflow fails SplitAt up front, and a hand-built back-style
// subgraph (import-fed roots plus a cycle further down) fails Validate
// — dropping severed cross-cut edges must never mask a cycle that
// lives entirely on one side.
func TestSplitRejectsCycles(t *testing.T) {
	cyclic := &dag.Workflow{
		Name: "cyclic",
		Functions: []dag.FuncSpec{
			{Name: "a"},
			{Name: "b", DependsOn: []string{"a", "d"}},
			{Name: "c", DependsOn: []string{"b"}},
			{Name: "d", DependsOn: []string{"c"}},
		},
	}
	if _, _, err := SplitAt(cyclic, 1); !errors.Is(err, dag.ErrCycle) {
		t.Fatalf("SplitAt on cyclic workflow = %v, want ErrCycle", err)
	}
	if _, err := CrossSlots(cyclic, 1); !errors.Is(err, dag.ErrCycle) {
		t.Fatalf("CrossSlots on cyclic workflow = %v, want ErrCycle", err)
	}

	// The shape a buggy splitter (or a hand-split DAG, the paper's §9
	// workflow) could produce: a legitimate import-fed root feeding a
	// back-side cycle.
	backCycle := &dag.Workflow{
		Name: "back",
		Functions: []dag.FuncSpec{
			{Name: "root"}, // import-fed, no deps — fine
			{Name: "x", DependsOn: []string{"root", "y"}},
			{Name: "y", DependsOn: []string{"x"}},
		},
	}
	if err := backCycle.Validate(); !errors.Is(err, dag.ErrCycle) {
		t.Fatalf("back-subgraph cycle Validate = %v, want ErrCycle", err)
	}
}
