package visor

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"

	"alloystack/internal/asvm"
	"alloystack/internal/dag"
	"alloystack/internal/scan"
)

// Adversarial guest images: each violates one invariant the static
// verifier proves at admission. None of them may ever reach an engine.
func badGuests() map[string]*asvm.Program {
	return map[string]*asvm.Program{
		// Branch to an instruction index outside the function.
		"bad-jump": {MemSize: 64, Funcs: []asvm.Func{{
			Name: "run", NArgs: 2, NLocals: 2, Results: 1,
			Code: []asvm.Instr{
				{Op: asvm.OpJmp, Arg: 50},
				{Op: asvm.OpPush, Arg: 0},
				{Op: asvm.OpRet},
			},
		}}},
		// Returns with two values while declaring one result: leaks a
		// value onto the shared stack, skewing the caller's frame.
		"bad-stack": {MemSize: 64, Funcs: []asvm.Func{{
			Name: "run", NArgs: 2, NLocals: 2, Results: 1,
			Code: []asvm.Instr{
				{Op: asvm.OpPush, Arg: 1},
				{Op: asvm.OpPush, Arg: 2},
				{Op: asvm.OpRet},
			},
		}}},
		// Calls a host import outside the WASI allowlist — the ASVM
		// analogue of an embedded syscall instruction.
		"bad-import": {
			MemSize: 64,
			Imports: []asvm.Import{{Name: "raw_mmap", Arity: 1, HasResult: true}},
			Funcs: []asvm.Func{{
				Name: "run", NArgs: 2, NLocals: 2, Results: 1,
				Code: []asvm.Instr{
					{Op: asvm.OpPush, Arg: 0},
					{Op: asvm.OpHost, Arg: 0},
					{Op: asvm.OpRet},
				},
			}},
		},
	}
}

func TestAdmissionRejectsAdversarialGuests(t *testing.T) {
	r := NewRegistry()
	for name, prog := range badGuests() {
		r.RegisterVM(name, "c", VMFunc{Prog: prog, Entry: "run", Engine: asvm.EngineAOT})
	}
	v := New(r)

	rejected := int64(0)
	for name := range badGuests() {
		w := &dag.Workflow{Name: "w-" + name, Functions: []dag.FuncSpec{
			{Name: name, Language: "c"},
		}}
		_, err := v.RunWorkflow(w, testOpts(nil))
		if !errors.Is(err, ErrRejected) {
			t.Fatalf("%s: err = %v, want ErrRejected", name, err)
		}
		rejected++
		if got := v.ScanRejects(); got != rejected {
			t.Fatalf("%s: ScanRejects = %d, want %d", name, got, rejected)
		}
	}

	// The cached verdict still counts each rejected invocation.
	w := &dag.Workflow{Name: "again", Functions: []dag.FuncSpec{
		{Name: "bad-jump", Language: "c"},
	}}
	if _, err := v.RunWorkflow(w, testOpts(nil)); !errors.Is(err, ErrRejected) {
		t.Fatalf("cached verdict: err = %v", err)
	}
	if got := v.ScanRejects(); got != rejected+1 {
		t.Fatalf("cached rejection not counted: ScanRejects = %d", got)
	}
}

func TestAdmissionPassesCleanGuestAndNative(t *testing.T) {
	// The standard test registry (native) plus a clean guest: admission
	// must be invisible to them.
	r := testRegistry(t)
	r.RegisterVM("guest", "c", VMFunc{
		Prog:   asvm.MustAssemble(guestSrc),
		Entry:  "run",
		Engine: asvm.EngineAOT,
	})
	v := New(r)
	var out bytes.Buffer
	w := &dag.Workflow{Name: "w", Functions: []dag.FuncSpec{
		{Name: "guest", Language: "c"},
	}}
	if _, err := v.RunWorkflow(w, testOpts(func(o *RunOptions) { o.Stdout = &out })); err != nil {
		t.Fatalf("clean guest rejected: %v", err)
	}
	if _, err := v.RunWorkflow(pipelineWorkflow(2), testOpts(nil)); err != nil {
		t.Fatalf("native workflow rejected: %v", err)
	}
	if got := v.ScanRejects(); got != 0 {
		t.Fatalf("ScanRejects = %d after clean runs", got)
	}
}

func TestAdmissionCustomAllowlist(t *testing.T) {
	prog := &asvm.Program{
		MemSize: 64,
		Imports: []asvm.Import{{Name: "bespoke_host", Arity: 0, HasResult: true}},
		Funcs: []asvm.Func{{
			Name: "run", NArgs: 2, NLocals: 2, Results: 1,
			Code: []asvm.Instr{
				{Op: asvm.OpHost, Arg: 0},
				{Op: asvm.OpRet},
			},
		}},
	}
	if _, err := scan.Verify(prog, scan.WASIAllowlist()); err == nil {
		t.Fatal("bespoke import unexpectedly on the WASI allowlist")
	}
	r := NewRegistry()
	r.RegisterVM("custom", "c", VMFunc{Prog: prog, Entry: "run", Engine: asvm.EngineAOT})
	v := New(r)
	v.ImportAllowlist = map[string]bool{"bespoke_host": true}
	w := &dag.Workflow{Name: "w", Functions: []dag.FuncSpec{{Name: "custom", Language: "c"}}}
	// Admission must accept under the custom allowlist; execution then
	// fails on the unlinked host, which is not ErrRejected.
	_, err := v.RunWorkflow(w, testOpts(nil))
	if errors.Is(err, ErrRejected) {
		t.Fatalf("custom allowlist not honoured: %v", err)
	}
}

func TestWatchdogScanRejectHTTP(t *testing.T) {
	r := NewRegistry()
	r.RegisterVM("evil", "c", VMFunc{
		Prog:   badGuests()["bad-import"],
		Entry:  "run",
		Engine: asvm.EngineAOT,
	})
	v := New(r)
	if err := v.RegisterWorkflow(&dag.Workflow{
		Name:      "evil-wf",
		Functions: []dag.FuncSpec{{Name: "evil", Language: "c"}},
	}); err != nil {
		t.Fatal(err)
	}
	wd := NewWatchdog(v)
	wd.OptionsFor = func(string) RunOptions { return testOpts(nil) }
	addr, err := wd.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer wd.Stop()

	resp, err := http.Post("http://"+addr+"/invoke/evil-wf", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("status = %d, body %s; want 403", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "admission scan") {
		t.Fatalf("body does not name the admission scan: %s", body)
	}

	mresp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "alloystack_scan_rejects_total 1") {
		t.Fatalf("metrics missing scan-rejects counter:\n%s", mbody)
	}
}
