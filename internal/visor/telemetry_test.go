package visor

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"alloystack/internal/metrics"
)

// telClock is a settable clock for SLO-driven telemetry tests.
type telClock struct{ now time.Time }

func (c *telClock) Now() time.Time          { return c.now }
func (c *telClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func newTelClock() *telClock { return &telClock{now: time.Unix(1_700_000_000, 0)} }

func TestTelemetryNilSafe(t *testing.T) {
	var tel *Telemetry
	if tr := tel.StartRun("wf"); tr != nil {
		t.Fatalf("nil plane handed out a tracer: %v", tr)
	}
	if rt := tel.ObserveRun("wf", nil, time.Second, nil); rt.Retained {
		t.Fatalf("nil plane retained a run: %+v", rt)
	}
	if bad, wfs := tel.Degraded(); bad || wfs != nil {
		t.Fatalf("nil plane degraded: %v %v", bad, wfs)
	}
	if _, ok := tel.TraceJSON("x"); ok {
		t.Fatal("nil plane resolved a trace")
	}
	if ids := tel.TraceIDs(); ids != nil {
		t.Fatalf("nil plane listed traces: %v", ids)
	}
	if q := tel.Quantile("wf", 0.5); q != 0 {
		t.Fatalf("nil plane quantile = %v", q)
	}
	if n, dir := tel.Captures(); n != 0 || dir != "" {
		t.Fatalf("nil plane captures = %d %q", n, dir)
	}
	if r, d := tel.Retained(); r != 0 || d != 0 {
		t.Fatalf("nil plane retention = %d/%d", r, d)
	}
	tel.WaitCaptures()
	var sb strings.Builder
	tel.WriteMetrics(metrics.NewPromWriter(&sb))
	if sb.Len() != 0 {
		t.Fatalf("nil plane wrote metrics: %q", sb.String())
	}
}

// TestTelemetryRetentionRules checks the sampling contract: failed runs
// are always retained and resolvable, ordinary runs below the base rate
// are dropped, and exemplars are installed exactly for retained traces
// so everything a scraper sees on /metrics resolves via /traces/{id}.
func TestTelemetryRetentionRules(t *testing.T) {
	tel := NewTelemetry(TelemetryConfig{SamplerSeed: 1, SampleRate: -1}) // base rate off

	okTracer := tel.StartRun("wf")
	span := okTracer.Start("step", "test")
	span.End()
	rt := tel.ObserveRun("wf", okTracer, 10*time.Millisecond, nil)
	if rt.Retained {
		t.Fatalf("ordinary run retained with base rate off: %+v", rt)
	}
	if _, ok := tel.TraceJSON(okTracer.TraceID()); ok {
		t.Fatal("dropped run's trace is resolvable")
	}

	failTracer := tel.StartRun("wf")
	span = failTracer.Start("step", "test")
	span.End()
	rt = tel.ObserveRun("wf", failTracer, 10*time.Millisecond, errors.New("boom"))
	if !rt.Retained || rt.Reason != "failed" {
		t.Fatalf("failed run = %+v, want retained/failed", rt)
	}
	data, ok := tel.TraceJSON(failTracer.TraceID())
	if !ok || len(data) == 0 {
		t.Fatal("failed run's trace not resolvable")
	}

	retained, dropped := tel.Retained()
	if retained != 1 || dropped != 1 {
		t.Fatalf("retention counters = %d/%d, want 1/1", retained, dropped)
	}

	// The only exemplar on the OpenMetrics exposition is the retained
	// run's ID: the dropped run observed with an empty exemplar, which
	// never overwrites.
	var sb strings.Builder
	pw := metrics.NewOpenMetricsWriter(&sb)
	tel.WriteMetrics(pw)
	pw.Finish()
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	if !strings.Contains(body, `trace_id="`+failTracer.TraceID()+`"`) {
		t.Fatalf("exposition missing retained exemplar:\n%s", body)
	}
	if strings.Contains(body, okTracer.TraceID()) {
		t.Fatalf("exposition leaks a dropped run's trace ID:\n%s", body)
	}
	if !strings.Contains(body, `alloystack_workflow_e2e_seconds_count{workflow="wf"} 2`) {
		t.Fatalf("exposition missing workflow histogram count:\n%s", body)
	}
	if !strings.Contains(body, "alloystack_traces_retained_total 1") ||
		!strings.Contains(body, "alloystack_traces_dropped_total 1") {
		t.Fatalf("exposition missing retention counters:\n%s", body)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Fatalf("OpenMetrics exposition missing # EOF terminator:\n%s", body)
	}

	// The default 0.0.4 exposition must stay exemplar-free: its parser
	// rejects exemplar suffixes, so a single one would fail every stock
	// Prometheus scrape.
	var plain strings.Builder
	ppw := metrics.NewPromWriter(&plain)
	tel.WriteMetrics(ppw)
	ppw.Finish()
	if strings.Contains(plain.String(), "trace_id=") {
		t.Fatalf("0.0.4 exposition carries an exemplar suffix:\n%s", plain.String())
	}
}

// TestTelemetryTailRuleWarmup checks the tail-quantile retention rule
// engages only after minTailCount observations.
func TestTelemetryTailRuleWarmup(t *testing.T) {
	tel := NewTelemetry(TelemetryConfig{SamplerSeed: 1, SampleRate: -1, TailQuantile: 0.5})

	// Before warm-up, even a wildly slow run is not "tail": there is no
	// meaningful threshold yet.
	tr := tel.StartRun("wf")
	if rt := tel.ObserveRun("wf", tr, time.Hour, nil); rt.Retained {
		t.Fatalf("tail rule engaged before warm-up: %+v", rt)
	}
	for i := 0; i < minTailCount; i++ {
		tel.ObserveRun("wf", tel.StartRun("wf"), time.Millisecond, nil)
	}
	// Now a run far beyond the p50 estimate is retained as tail.
	tr = tel.StartRun("wf")
	rt := tel.ObserveRun("wf", tr, time.Hour, nil)
	if !rt.Retained || rt.Reason != "tail" {
		t.Fatalf("slow run after warm-up = %+v, want retained/tail", rt)
	}
}

// TestTelemetryTraceStoreBounded drives FIFO eviction through the
// public surface: with RetainedTraces=2, the third retained trace
// evicts the first.
func TestTelemetryTraceStoreBounded(t *testing.T) {
	tel := NewTelemetry(TelemetryConfig{SamplerSeed: 1, SampleRate: -1, RetainedTraces: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		tr := tel.StartRun("wf")
		tr.Start("step", "test").End()
		ids = append(ids, tr.TraceID())
		if rt := tel.ObserveRun("wf", tr, time.Millisecond, errors.New("keep me")); !rt.Retained {
			t.Fatalf("run %d not retained", i)
		}
	}
	if _, ok := tel.TraceJSON(ids[0]); ok {
		t.Fatal("oldest trace not evicted at cap 2")
	}
	for _, id := range ids[1:] {
		if _, ok := tel.TraceJSON(id); !ok {
			t.Fatalf("trace %s evicted too early", id)
		}
	}
	got := tel.TraceIDs()
	if len(got) != 2 || got[0] != ids[1] || got[1] != ids[2] {
		t.Fatalf("TraceIDs = %v, want %v", got, ids[1:])
	}
}

// TestTelemetryCaptureOnBreach drives the full anomaly pipeline: an SLO
// breach transition kicks off one capture — CPU + heap profiles, the
// flight recorder dump and the Chrome trace — and flips Degraded().
// A second bad run inside the same breach episode must not re-capture.
func TestTelemetryCaptureOnBreach(t *testing.T) {
	dir := t.TempDir()
	clk := newTelClock()
	tel := NewTelemetry(TelemetryConfig{
		SamplerSeed:       1,
		SampleRate:        -1,
		SLO:               metrics.SLOConfig{Objective: time.Microsecond},
		CaptureDir:        dir,
		CaptureCPUProfile: 20 * time.Millisecond,
		Clock:             clk.Now,
	})

	tr := tel.StartRun("etl-job")
	tr.Start("step", "test").End()
	tel.ObserveRun("etl-job", tr, time.Second, nil) // blows the 1µs objective
	tel.WaitCaptures()

	n, capDir := tel.Captures()
	if n != 1 {
		t.Fatalf("captures = %d, want 1", n)
	}
	if !strings.HasPrefix(filepath.Base(capDir), "etl-job-") {
		t.Fatalf("capture dir = %q, want etl-job-<ts>", capDir)
	}
	for _, name := range []string{"cpu.pprof", "heap.pprof", "flight.txt", "trace.json"} {
		fi, err := os.Stat(filepath.Join(capDir, name))
		if err != nil {
			t.Fatalf("capture artifact %s: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("capture artifact %s is empty", name)
		}
	}
	flight, err := os.ReadFile(filepath.Join(capDir, "flight.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(flight), "etl-job") {
		t.Fatalf("flight dump does not name the workflow:\n%s", flight)
	}

	if bad, wfs := tel.Degraded(); !bad || len(wfs) != 1 || wfs[0] != "etl-job" {
		t.Fatalf("degraded = %v %v, want true [etl-job]", bad, wfs)
	}

	// Still inside the breach episode: no second capture.
	tel.ObserveRun("etl-job", tel.StartRun("etl-job"), time.Second, nil)
	tel.WaitCaptures()
	if n, _ := tel.Captures(); n != 1 {
		t.Fatalf("re-captured inside a breach episode: %d", n)
	}

	// Exposition reflects the breach.
	var sb strings.Builder
	tel.WriteMetrics(metrics.NewPromWriter(&sb))
	body := sb.String()
	if !strings.Contains(body, `alloystack_slo_breached{workflow="etl-job"} 1`) {
		t.Fatalf("exposition missing breach gauge:\n%s", body)
	}
	if !strings.Contains(body, "alloystack_anomaly_captures_total 1") {
		t.Fatalf("exposition missing capture counter:\n%s", body)
	}

	// Windows roll past the burst: the episode ends, a new breach
	// captures again.
	clk.Advance(time.Hour)
	if bad, _ := tel.Degraded(); bad {
		t.Fatal("still degraded after the windows rolled over")
	}
	tel.ObserveRun("etl-job", tel.StartRun("etl-job"), time.Second, nil)
	tel.WaitCaptures()
	if n, _ := tel.Captures(); n != 2 {
		t.Fatalf("new breach episode did not capture: %d", n)
	}
}

// TestTelemetryFingerprintStable is the determinism contract: sampling
// is retention-only, so two identical seeded runs under the always-on
// plane produce byte-identical trace fingerprints.
func TestTelemetryFingerprintStable(t *testing.T) {
	run := func() string {
		v := New(testRegistry(t))
		tel := NewTelemetry(TelemetryConfig{SamplerSeed: 7})
		tr := tel.StartRun("pipeline")
		_, err := v.RunWorkflow(pipelineWorkflow(2), testOpts(func(o *RunOptions) {
			o.Trace = tr
		}))
		if err != nil {
			t.Fatal(err)
		}
		tel.ObserveRun("pipeline", tr, 10*time.Millisecond, nil)
		return tr.Fingerprint()
	}
	a, b := run(), run()
	if a == "" || a != b {
		t.Fatalf("fingerprints diverged under the telemetry plane: %q vs %q", a, b)
	}
}

// TestTelemetrySanitizeCaptureName keeps hostile workflow names inside
// the capture directory.
func TestTelemetrySanitizeCaptureName(t *testing.T) {
	for in, want := range map[string]string{
		"etl-job":      "etl-job",
		"../../escape": "______escape",
		"a b/c\\d":     "a_b_c_d",
		"snake_case_9": "snake_case_9",
	} {
		if got := sanitizeCaptureName(in); got != want {
			t.Fatalf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestTelemetryConcurrentObserve hammers ObserveRun from many
// goroutines (the -race run is the real assertion).
func TestTelemetryConcurrentObserve(t *testing.T) {
	tel := NewTelemetry(TelemetryConfig{SamplerSeed: 1, SampleRate: 0.5})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				wf := fmt.Sprintf("wf-%d", g%3)
				tr := tel.StartRun(wf)
				tr.Start("step", "test").End()
				tel.ObserveRun(wf, tr, time.Duration(i)*time.Millisecond, nil)
				if i%10 == 0 {
					var sb strings.Builder
					tel.WriteMetrics(metrics.NewPromWriter(&sb))
					tel.TraceIDs()
					tel.Degraded()
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	retained, dropped := tel.Retained()
	if retained+dropped != 8*50 {
		t.Fatalf("decisions = %d, want 400", retained+dropped)
	}
}

// TestWatchdogTelemetryEndpoints drives the HTTP surface of the
// always-on plane: an untraced invoke surfaces the flight tracer's ID,
// /traces/{id} resolves the retained export, /metrics exposes the
// per-workflow histogram with the exemplar and build info, and the
// pprof handlers answer.
func TestWatchdogTelemetryEndpoints(t *testing.T) {
	v := New(testRegistry(t))
	if err := v.RegisterWorkflow(pipelineWorkflow(2)); err != nil {
		t.Fatal(err)
	}
	wd := NewWatchdog(v)
	wd.OptionsFor = func(string) RunOptions { return testOpts(nil) }
	wd.Telemetry = NewTelemetry(TelemetryConfig{SamplerSeed: 1, SampleRate: 1}) // retain everything
	addr, err := wd.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer wd.Stop()

	resp, err := http.Post("http://"+addr+"/invoke/pipeline", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var ir InvokeResponse
	err = json.NewDecoder(resp.Body).Decode(&ir)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ir.Error != "" {
		t.Fatalf("invoke failed: %s", ir.Error)
	}
	if ir.TraceID == "" {
		t.Fatal("untraced invoke carried no always-on trace ID")
	}
	if len(ir.Trace) != 0 {
		t.Fatal("untraced invoke returned an inline trace export")
	}

	// The retained export resolves by ID and is Chrome trace JSON.
	body := httpGetBody(t, "http://"+addr+"/traces/"+ir.TraceID)
	var doc chromeDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("retained trace is not Chrome JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("retained trace has no events")
	}
	// The bare /traces/ listing includes it.
	var ids []string
	if err := json.Unmarshal([]byte(httpGetBody(t, "http://"+addr+"/traces/")), &ids); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range ids {
		found = found || id == ir.TraceID
	}
	if !found {
		t.Fatalf("trace listing %v missing %s", ids, ir.TraceID)
	}
	// Unknown IDs 404.
	if r404, err := http.Get("http://" + addr + "/traces/nope"); err != nil {
		t.Fatal(err)
	} else {
		r404.Body.Close()
		if r404.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown trace status = %d", r404.StatusCode)
		}
	}

	// A plain scrape gets the 0.0.4 text format: full histograms, no
	// exemplar suffixes (they are illegal in that dialect).
	mb := httpGetBody(t, "http://"+addr+"/metrics")
	for _, want := range []string{
		`alloystack_workflow_e2e_seconds_bucket{workflow="pipeline",le="`,
		"alloystack_build_info{",
		"alloystack_traces_retained_total 1",
		"alloystack_watchdog_invoke_latency_seconds_count 1",
	} {
		if !strings.Contains(mb, want) {
			t.Fatalf("metrics missing %q:\n%s", want, mb)
		}
	}
	if strings.Contains(mb, "trace_id=") {
		t.Fatalf("0.0.4 scrape carries an exemplar suffix:\n%s", mb)
	}

	// An OpenMetrics scrape (Accept-negotiated) carries the exemplar
	// pointing at the retained trace, and terminates with # EOF.
	req, err := http.NewRequest(http.MethodGet, "http://"+addr+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	omResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	omBytes, err := io.ReadAll(omResp.Body)
	omResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := omResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("OpenMetrics scrape Content-Type = %q", ct)
	}
	om := string(omBytes)
	if !strings.Contains(om, `trace_id="`+ir.TraceID+`"`) {
		t.Fatalf("OpenMetrics scrape missing exemplar for %s:\n%s", ir.TraceID, om)
	}
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Fatalf("OpenMetrics scrape missing # EOF terminator:\n%s", om)
	}

	// The pprof surface answers.
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap?debug=1"} {
		r, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, r.StatusCode)
		}
	}
}

// TestWatchdogDegradedHealth checks that an SLO breach flips /healthz
// to the degraded body (still 200: the node serves while it burns).
func TestWatchdogDegradedHealth(t *testing.T) {
	v := New(testRegistry(t))
	if err := v.RegisterWorkflow(pipelineWorkflow(2)); err != nil {
		t.Fatal(err)
	}
	wd := NewWatchdog(v)
	wd.OptionsFor = func(string) RunOptions { return testOpts(nil) }
	wd.Telemetry = NewTelemetry(TelemetryConfig{
		SamplerSeed: 1,
		SLO:         metrics.SLOConfig{Objective: time.Nanosecond}, // every run breaches
	})
	addr, err := wd.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer wd.Stop()

	if body := httpGetBody(t, "http://"+addr+"/healthz"); !strings.HasPrefix(body, "ok") {
		t.Fatalf("pre-invoke health = %q", body)
	}
	resp, err := http.Post("http://"+addr+"/invoke/pipeline", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	body := httpGetBody(t, "http://"+addr+"/healthz")
	if !strings.HasPrefix(body, "degraded workflows=pipeline") {
		t.Fatalf("post-breach health = %q", body)
	}
}
