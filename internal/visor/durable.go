package visor

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sort"
	"strings"
	"sync"

	"alloystack/internal/asstd"
	"alloystack/internal/core"
	"alloystack/internal/dag"
	"alloystack/internal/journal"
	"alloystack/internal/libos"
	"alloystack/internal/trace"
	"alloystack/internal/xfer"
)

// This file implements durable workflow runs: the visor-side glue around
// internal/journal. A durable run writes a write-ahead journal record at
// every stage barrier and spills the intermediate data crossing the
// barrier, so a crashed visor can resume the run from its last committed
// stage instead of re-executing the whole DAG. A terminal stage failure
// (as opposed to a crash) unwinds the committed prefix as a saga: each
// committed function's declared compensation handler runs in reverse
// commit order, exactly once across resumes, before the journal is
// sealed with a terminal verdict.
//
// Crash vs failure: a crashpoint (faults.Crash) kills the process — or,
// with no CrashFn installed, aborts the run with ErrCrashPoint — leaving
// the journal unsealed with no run-failed record, so a resume continues
// forward. A function that fails terminally appends run-failed first;
// the resume of such a run goes straight to the saga unwind.

// ErrCrashPoint is the soft-crash error: a faults.Crash point fired but
// no RunOptions.CrashFn was installed to kill the process, so the run
// aborts in-process with its journal left unsealed (resumable), exactly
// as a real crash would leave it.
var ErrCrashPoint = errors.New("visor: durability crashpoint reached")

// durableRun carries one invocation's journal handle and recovery state.
type durableRun struct {
	store *journal.Store
	jr    *journal.Run
	spill journal.SpillStore
	// st is the replayed journal state when resuming, nil for a fresh
	// run. resumeFrom is the first stage the forward pass must execute;
	// committed counts the stages durable so far (grows at barriers).
	st         *journal.State
	resumeFrom int

	// async enables the pipelined barrier: the spill write and commit
	// record of stage N overlap stage N+1's compute, hiding the
	// checkpoint IO behind useful work. It is off whenever a fault plan
	// is armed, so seeded crashpoints keep their deterministic position
	// in the record stream. committed and asyncErr are guarded by mu;
	// wg tracks in-flight barrier commits (settle drains them).
	async     bool
	wg        sync.WaitGroup
	mu        sync.Mutex
	committed int
	asyncErr  error
	// commitGate serialises async barrier commits in stage order: each
	// barrier's goroutine waits for the previous barrier's records to
	// reach the journal before appending its own. Without the chain,
	// stage N+1's stage-committed record could land before stage N's;
	// a crash in that window would leave a non-prefix committed set,
	// and the journaled-but-past-the-gap stage would re-execute on
	// resume. Only the run loop writes this field (barrier is called
	// from a single goroutine); spawned commits capture it by value.
	commitGate chan struct{}
}

// settle waits for every in-flight barrier commit and surfaces the
// first error. Every terminal path — seal, failure unwind — must pass
// through here before reading committed state.
func (d *durableRun) settle() error {
	d.wg.Wait()
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.asyncErr
}

// committedPrefix reads the stages durable so far.
func (d *durableRun) committedPrefix() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.committed
}

// openDurable opens the run's journal: a resume replays and re-opens an
// existing one, anything else begins a fresh journal carrying the
// workflow spec.
func openDurable(w *dag.Workflow, opts RunOptions) (*durableRun, error) {
	s := opts.Journal
	if opts.Resume != "" {
		jr, st, err := s.Resume(opts.Resume)
		if err != nil {
			return nil, err
		}
		if st.Workflow != w.Name {
			jr.Close()
			return nil, fmt.Errorf("visor: resume %s: journal is for workflow %q, not %q",
				opts.Resume, st.Workflow, w.Name)
		}
		k := st.CommittedPrefix()
		return &durableRun{store: s, jr: jr, spill: s.Spill(jr.ID()),
			st: st, resumeFrom: k, committed: k, async: opts.Faults == nil}, nil
	}
	jr, err := s.Begin(opts.RunID, w)
	if err != nil {
		return nil, err
	}
	return &durableRun{store: s, jr: jr, spill: s.Spill(jr.ID()),
		async: opts.Faults == nil}, nil
}

// crash consults the fault plan for the named crashpoint. When it fires,
// the flight recorder is dumped next to the journal (pre-crash spans
// must survive the process), the journal handle is closed *unsealed* —
// a crash is not a failure — and either CrashFn kills the process or
// the run aborts with ErrCrashPoint.
func (d *durableRun) crash(opts RunOptions, point string) error {
	if !opts.Faults.CrashAt(point) {
		return nil
	}
	d.flightDump(opts.Trace, "crashpoint "+point)
	d.jr.Close()
	if opts.CrashFn != nil {
		opts.CrashFn(point)
	}
	return fmt.Errorf("%w: %s", ErrCrashPoint, point)
}

// flightDump appends the tracer's flight recorder to the run's
// <id>.flight.log beside the journal. Barrier commits, resume starts,
// crashpoints and seals all dump here, so the spans leading up to a
// crash are on disk before the process dies.
func (d *durableRun) flightDump(tr *trace.Tracer, reason string) {
	if tr == nil || tr.Recorder() == nil {
		return
	}
	f, err := os.OpenFile(d.store.FlightPath(d.jr.ID()),
		os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	tr.FlightDump(f, reason)
	f.Close()
}

// barrier makes stage si durable: snapshot every AsBuffer slot the stage
// produced for a later consumer (plus the run's export slots at the
// final stage), persist each through the spill store, journal a
// slot-spilled record per payload, then commit the stage. The snapshot
// is always synchronous (it must copy the slots before the next stage
// consumes them); in async mode the persistence half runs in the
// background, overlapped with the next stage's compute — a crash before
// it lands simply re-executes the uncommitted stage on resume.
func (d *durableRun) barrier(wfd wfdRunner, root *trace.Span,
	stages [][]dag.FuncSpec, exports []string, si int) error {
	want := barrierSlots(stages, si)
	if si == len(stages)-1 {
		want = append(want, exports...)
	}
	sp := root.Child(fmt.Sprintf("journal-barrier-%d", si), trace.CatJournal)
	var data map[string][]byte
	if len(want) > 0 {
		var err error
		if data, err = snapshotSlots(wfd, want); err != nil {
			sp.End()
			return err
		}
		sp.SetAttr("slots", len(data))
	}
	commit := func() error {
		defer sp.End()
		names := make([]string, 0, len(data))
		for slot := range data {
			names = append(names, slot)
		}
		sort.Strings(names)
		for _, slot := range names {
			payload := data[slot]
			sum := crc32.ChecksumIEEE(payload)
			if err := d.spill.Put(slot, payload); err != nil {
				return err
			}
			if err := d.jr.SlotSpilled(si, slot, int64(len(payload)), sum); err != nil {
				return err
			}
		}
		if len(names) > 0 {
			// One fsync for the whole barrier's payloads, before the
			// commit record that makes them reachable.
			if err := d.spill.Sync(); err != nil {
				return err
			}
		}
		if err := d.jr.StageCommitted(si); err != nil {
			return err
		}
		d.mu.Lock()
		if si+1 > d.committed {
			d.committed = si + 1
		}
		d.mu.Unlock()
		return nil
	}
	if !d.async {
		return commit()
	}
	prev := d.commitGate
	next := make(chan struct{})
	d.commitGate = next
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		defer close(next)
		if prev != nil {
			<-prev
		}
		d.mu.Lock()
		failed := d.asyncErr != nil
		d.mu.Unlock()
		if failed {
			// An earlier barrier's records never reached the journal;
			// appending this stage's commit after the gap would journal
			// a non-prefix committed set. Drop it — settle surfaces the
			// original error and the run fails before sealing.
			return
		}
		if err := commit(); err != nil {
			d.mu.Lock()
			if d.asyncErr == nil {
				d.asyncErr = fmt.Errorf("visor: journal barrier %d: %w", si, err)
			}
			d.mu.Unlock()
		}
	}()
	return nil
}

// importCommitted re-registers the journaled spill payloads a resumed
// run still needs: every spilled slot whose consumer stage is at or past
// the resume point (slots consumed entirely inside the committed prefix
// are dead weight). Each payload is verified against its journaled CRC.
func (d *durableRun) importCommitted(wfd wfdRunner, root *trace.Span,
	stages [][]dag.FuncSpec) error {
	if len(d.st.Spilled) == 0 {
		return nil
	}
	stageOf := make(map[string]int)
	for si, stage := range stages {
		for _, f := range stage {
			stageOf[f.Name] = si
		}
	}
	payloads := make(map[string][]byte)
	for _, sp := range d.st.Spilled {
		if sp.Stage >= d.resumeFrom || !d.st.Committed[sp.Stage] {
			// The producer stage is not in the committed prefix: a crash
			// inside the barrier window can journal slot-spilled records
			// (and even partial spill files) before the stage-committed
			// record lands. The resume re-executes that producer, which
			// re-registers its output slots — importing the orphaned
			// spill would make the re-run fail on ErrSlotExists.
			continue
		}
		if consumerStage(sp.Slot, stageOf) < d.resumeFrom {
			continue
		}
		data, err := d.spill.Get(sp.Slot, sp.Sum)
		if err != nil {
			return fmt.Errorf("visor: journal spill %q: %w", sp.Slot, err)
		}
		payloads[sp.Slot] = data
	}
	if len(payloads) == 0 {
		return nil
	}
	span := root.Child("journal-import", trace.CatJournal)
	span.SetAttr("slots", len(payloads))
	defer span.End()
	if err := importSlots(wfd, payloads); err != nil {
		return fmt.Errorf("visor: journal import: %w", err)
	}
	return nil
}

// barrierSlots enumerates the candidate AsBuffer slots produced by stage
// si for any later stage, using the Slot naming convention for every
// (instance, instance) pair of each crossing edge — the same convention
// CrossSlots uses at a multi-node cut. Pairs the workload never
// populated are fine: the snapshot skips unregistered slots.
func barrierSlots(stages [][]dag.FuncSpec, si int) []string {
	stageOf := make(map[string]int)
	instOf := make(map[string]int)
	for k, stage := range stages {
		for _, f := range stage {
			stageOf[f.Name] = k
			instOf[f.Name] = f.InstancesOf()
		}
	}
	var slots []string
	for k := si + 1; k < len(stages); k++ {
		for _, f := range stages[k] {
			for _, dep := range f.DependsOn {
				if stageOf[dep] != si {
					continue
				}
				for i := 0; i < instOf[dep]; i++ {
					for j := 0; j < f.InstancesOf(); j++ {
						slots = append(slots, Slot(dep, i, f.Name, j))
					}
				}
			}
		}
	}
	return slots
}

// consumerStage parses the consuming function out of a conventional
// "from:i->to:j" slot name and maps it to its stage. Slots that do not
// parse — or name a function outside the DAG, like export sinks — are
// always worth importing, so they map to the far end.
func consumerStage(slot string, stageOf map[string]int) int {
	_, rest, ok := strings.Cut(slot, "->")
	if !ok {
		return math.MaxInt
	}
	name := rest
	if i := strings.LastIndexByte(rest, ':'); i > 0 {
		name = rest[:i]
	}
	if si, ok := stageOf[name]; ok {
		return si
	}
	return math.MaxInt
}

// snapshotSlots copies the named slots' bytes out of the WFD without
// consuming them: acquire (which deregisters), copy, re-register the
// same buffer under the same slot. Downstream stages still find their
// inputs exactly where the producer left them; the copy is what the
// spill store persists. Slots never registered are skipped.
func snapshotSlots(wfd wfdRunner, slots []string) (map[string][]byte, error) {
	out := make(map[string][]byte)
	err := wfd.Run("__journal-spill", func(env *asstd.Env) error {
		for _, slot := range slots {
			if _, dup := out[slot]; dup {
				continue
			}
			b, err := asstd.FromSlot(env, slot)
			if err != nil {
				if errors.Is(err, libos.ErrSlotMissing) {
					continue // candidate pair the workload never used
				}
				return err
			}
			data := make([]byte, len(b.Bytes()))
			copy(data, b.Bytes())
			if err := b.Forward(slot); err != nil {
				return err
			}
			out[slot] = data
		}
		return nil
	})
	return out, err
}

// unwind runs the saga: every committed stage's compensation handlers
// execute in reverse commit order, each under a journaled idempotency
// key ("fn:i@stage-si") so a crash mid-unwind never re-runs a handler a
// later resume sees as done. Returns the terminal verdict —
// "compensated", or "comp-failed" when any handler failed — or a crash
// error when an after-comp crashpoint fired.
func (v *Visor) unwind(wfd *core.WFD, plane runPlane, w *dag.Workflow,
	stages [][]dag.FuncSpec, d *durableRun, opts RunOptions,
	res *RunResult, root *trace.Span) (string, error) {
	verdict := "compensated"
	compSeq := 0
	for si := d.committedPrefix() - 1; si >= 0; si-- {
		for _, spec := range stages[si] {
			if spec.Compensate == "" {
				continue
			}
			comp, ok := w.CompensationSpec(spec.Compensate)
			if !ok {
				continue // Validate rejects this before any run starts
			}
			native, vm, lerr := v.Funcs.lookup(comp.Name, comp.Language)
			n := spec.InstancesOf()
			for i := 0; i < n; i++ {
				key := fmt.Sprintf("%s:%d@stage-%d", spec.Name, i, si)
				if d.st != nil {
					if done := d.st.CompDone[key]; done != "" {
						if done == "failed" {
							verdict = "comp-failed"
						}
						// Exactly-once: journaled as done. Still counts
						// toward compSeq so "after-comp:K" crashpoints
						// name the same physical compensation whether or
						// not the unwind is a resumed one.
						compSeq++
						continue
					}
				}
				if err := d.jr.CompStarted(key); err != nil {
					return "", err
				}
				span := root.Child("comp:"+key, trace.CatComp)
				var cerr error
				if lerr != nil {
					cerr = lerr
				} else {
					params := make(map[string]string, len(comp.Params)+2)
					for k, val := range comp.Params {
						params[k] = val
					}
					params["__for"] = spec.Name
					fctx := FuncContext{
						Workflow:  w.Name,
						Function:  comp.Name,
						Instance:  i,
						Instances: n,
						Stage:     si,
						Params:    params,
					}
					kind := EdgeTransfer(params, opts)
					cerr = wfd.Run(comp.Name, func(env *asstd.Env) error {
						env.Clock = res.Clock
						env.Span = span
						tr, terr := plane.transport(kind, env)
						if terr != nil {
							return terr
						}
						env.SetTransport(xfer.WithTrace(tr, span))
						if native != nil {
							return native(env, fctx)
						}
						return runVM(env, fctx, *vm, opts.CostScale, wfd)
					})
				}
				okc := cerr == nil
				detail := ""
				if cerr != nil {
					detail = cerr.Error()
					span.SetAttr("error", detail)
					verdict = "comp-failed"
				}
				span.End()
				if err := d.jr.CompDone(key, okc, detail); err != nil {
					return "", err
				}
				d.store.CountComp(okc)
				res.Compensations++
				if err := d.crash(opts, fmt.Sprintf("after-comp:%d", compSeq)); err != nil {
					return "", err
				}
				compSeq++
			}
		}
	}
	return verdict, nil
}
