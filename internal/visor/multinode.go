package visor

import (
	"errors"
	"fmt"

	"alloystack/internal/asstd"
	"alloystack/internal/dag"
	"alloystack/internal/libos"
	"alloystack/internal/xfer"
)

// This file implements the paper's §9 distributed/multi-node setting:
// workflows too large for one node are split at a stage boundary into
// subgraph workflows, each running in its own WFD on its own node, with
// the crossing intermediate data moved by traditional transfer (the
// paper: "developers can manually divide the DAG and run the workflow
// using traditional intermediate data transfer methods").
//
// The mechanism is slot bridging: RunOptions.ExportSlots names AsBuffer
// slots whose contents the visor extracts after the last stage;
// RunOptions.ImportSlots pre-registers buffers before the first stage.
// A coordinator runs the front subgraph, ships the exported slots across
// the network (any transport — examples use the kvstore), and runs the
// back subgraph with those slots imported.

// SplitAt cuts w at a stage boundary: front holds every function whose
// stage index is < cut, back holds the rest with their cross-boundary
// dependencies dropped (they become stage-0 roots fed by imported slots).
func SplitAt(w *dag.Workflow, cut int) (front, back *dag.Workflow, err error) {
	stages, err := w.Stages()
	if err != nil {
		return nil, nil, err
	}
	if cut <= 0 || cut >= len(stages) {
		return nil, nil, fmt.Errorf("visor: cut %d out of range (1..%d)", cut, len(stages)-1)
	}
	stageOf := make(map[string]int)
	for si, stage := range stages {
		for _, f := range stage {
			stageOf[f.Name] = si
		}
	}
	front = &dag.Workflow{Name: w.Name + "-front"}
	back = &dag.Workflow{Name: w.Name + "-back"}
	for _, f := range w.Functions {
		if stageOf[f.Name] < cut {
			front.Functions = append(front.Functions, f)
			continue
		}
		nf := f
		nf.DependsOn = nil
		for _, d := range f.DependsOn {
			if stageOf[d] >= cut {
				nf.DependsOn = append(nf.DependsOn, d)
			}
		}
		back.Functions = append(back.Functions, nf)
	}
	if err := front.Validate(); err != nil {
		return nil, nil, fmt.Errorf("visor: front subgraph: %w", err)
	}
	if err := back.Validate(); err != nil {
		return nil, nil, fmt.Errorf("visor: back subgraph: %w", err)
	}
	return front, back, nil
}

// CrossSlots enumerates the candidate AsBuffer slots crossing the cut,
// using the Slot naming convention for every (instance, instance) pair of
// each crossing edge. Workloads that only populate a subset of pairs are
// fine: export skips slots that were never registered.
func CrossSlots(w *dag.Workflow, cut int) ([]string, error) {
	stages, err := w.Stages()
	if err != nil {
		return nil, err
	}
	if cut <= 0 || cut >= len(stages) {
		return nil, fmt.Errorf("visor: cut %d out of range", cut)
	}
	stageOf := make(map[string]int)
	instOf := make(map[string]int)
	for si, stage := range stages {
		for _, f := range stage {
			stageOf[f.Name] = si
			instOf[f.Name] = f.InstancesOf()
		}
	}
	var slots []string
	for _, f := range w.Functions {
		if stageOf[f.Name] < cut {
			continue
		}
		for _, d := range f.DependsOn {
			if stageOf[d] >= cut {
				continue
			}
			for i := 0; i < instOf[d]; i++ {
				for j := 0; j < instOf[f.Name]; j++ {
					slots = append(slots, Slot(d, i, f.Name, j))
				}
			}
		}
	}
	return slots, nil
}

// exportSlots drains the named slots out of the WFD into plain byte
// slices (copies: the data is leaving the address space). The boundary
// buffers are read through the refpass transport so the drain shows up
// in the run's transfer counters like any other edge.
func exportSlots(wfd wfdRunner, slots []string) (map[string][]byte, error) {
	out := make(map[string][]byte)
	err := wfd.Run("__bridge-export", func(env *asstd.Env) error {
		tr := xfer.NewRefpass(env, nil, nil)
		for _, slot := range slots {
			src, release, err := tr.Recv(slot)
			if err != nil {
				if errors.Is(err, libos.ErrSlotMissing) {
					continue // candidate pair the workload never used
				}
				return err
			}
			data := make([]byte, len(src))
			copy(data, src)
			out[slot] = data
			if err := release(); err != nil {
				return err
			}
		}
		return nil
	})
	return out, err
}

// exportVia drains the named slots straight through an outbound
// transport (the net transport to a remote bridge): acquire the
// boundary buffer, ship its bytes, free it. Slots the workload never
// registered are skipped, like exportSlots.
func exportVia(wfd wfdRunner, tr xfer.Transport, slots []string) error {
	return wfd.Run("__bridge-export", func(env *asstd.Env) error {
		local := xfer.NewRefpass(env, nil, nil)
		for _, slot := range slots {
			src, release, err := local.Recv(slot)
			if err != nil {
				if errors.Is(err, libos.ErrSlotMissing) {
					continue
				}
				return err
			}
			if err := tr.Send(slot, src); err != nil {
				release()
				return err
			}
			if err := release(); err != nil {
				return err
			}
		}
		return nil
	})
}

// importSlots registers incoming intermediate data as AsBuffers before
// the subgraph's functions run.
func importSlots(wfd wfdRunner, slots map[string][]byte) error {
	return wfd.Run("__bridge-import", func(env *asstd.Env) error {
		for slot, data := range slots {
			if err := registerImport(env, slot, data); err != nil {
				return err
			}
		}
		return nil
	})
}

// importVia pulls the named slots from an inbound transport (the net
// transport from a remote bridge) and registers them as AsBuffers.
// Names absent on the far side are skipped — they mirror the export
// side's never-registered candidate pairs.
func importVia(wfd wfdRunner, tr xfer.Transport, names []string) error {
	return wfd.Run("__bridge-import", func(env *asstd.Env) error {
		for _, slot := range names {
			data, release, err := tr.Recv(slot)
			if err != nil {
				if errors.Is(err, libos.ErrSlotMissing) {
					continue
				}
				return err
			}
			if err := registerImport(env, slot, data); err != nil {
				release()
				return err
			}
			if err := release(); err != nil {
				return err
			}
		}
		return nil
	})
}

// registerImport parks one payload in a slot-registered AsBuffer.
func registerImport(env *asstd.Env, slot string, data []byte) error {
	size := uint64(len(data))
	if size == 0 {
		size = 1
	}
	b, err := asstd.NewBuffer(env, slot, size)
	if err != nil {
		return err
	}
	copy(b.Bytes(), data)
	return nil
}

// wfdRunner is the subset of core.WFD the bridge needs (kept as an
// interface so tests can fake it).
type wfdRunner interface {
	Run(name string, fn func(env *asstd.Env) error) error
}
