package visor

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"alloystack/internal/asstd"
	"alloystack/internal/asvm"
	"alloystack/internal/blockdev"
	"alloystack/internal/dag"
	"alloystack/internal/fatfs"
	"alloystack/internal/metrics"
)

// testRegistry builds a registry with a small pipeline:
// produce -> double(xN) -> sum.
func testRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()

	r.RegisterNative("produce", func(env *asstd.Env, ctx FuncContext) error {
		n := ctx.ParamInt("count", 4)
		for i := 0; i < int(n); i++ {
			b, err := asstd.NewBuffer(env, Slot("produce", 0, "double", i), 8)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(b.Bytes(), uint64(i+1))
		}
		return nil
	})

	r.RegisterNative("double", func(env *asstd.Env, ctx FuncContext) error {
		in, err := asstd.FromSlot(env, Slot("produce", 0, "double", ctx.Instance))
		if err != nil {
			return err
		}
		v := binary.LittleEndian.Uint64(in.Bytes())
		in.Free()
		out, err := asstd.NewBuffer(env, Slot("double", ctx.Instance, "sum", 0), 8)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(out.Bytes(), v*2)
		return nil
	})

	r.RegisterNative("sum", func(env *asstd.Env, ctx FuncContext) error {
		total := uint64(0)
		n := ctx.ParamInt("count", 4)
		for i := 0; i < int(n); i++ {
			b, err := asstd.FromSlot(env, Slot("double", i, "sum", 0))
			if err != nil {
				return err
			}
			total += binary.LittleEndian.Uint64(b.Bytes())
			b.Free()
		}
		return asstd.Printf(env, "total=%d", total)
	})

	return r
}

func pipelineWorkflow(instances int) *dag.Workflow {
	n := fmt.Sprint(instances)
	return &dag.Workflow{
		Name: "pipeline",
		Functions: []dag.FuncSpec{
			{Name: "produce", Params: map[string]string{"count": n}},
			{Name: "double", DependsOn: []string{"produce"}, Instances: instances,
				Params: map[string]string{"count": n}},
			{Name: "sum", DependsOn: []string{"double"},
				Params: map[string]string{"count": n}},
		},
	}
}

func testOpts(mutate func(*RunOptions)) RunOptions {
	opts := DefaultRunOptions()
	opts.CostScale = 0
	opts.BufHeapSize = 16 << 20
	if mutate != nil {
		mutate(&opts)
	}
	return opts
}

func TestRunWorkflowFanOutFanIn(t *testing.T) {
	v := New(testRegistry(t))
	var out bytes.Buffer
	res, err := v.RunWorkflow(pipelineWorkflow(4), testOpts(func(o *RunOptions) {
		o.Stdout = &out
	}))
	if err != nil {
		t.Fatalf("RunWorkflow: %v", err)
	}
	// 2*(1+2+3+4) = 20.
	if out.String() != "total=20" {
		t.Fatalf("output = %q", out.String())
	}
	if res.E2E <= 0 || res.ColdStart <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Stages) != 3 {
		t.Fatalf("stage count = %d", len(res.Stages))
	}
}

func TestRunWorkflowParallelInstancesVary(t *testing.T) {
	v := New(testRegistry(t))
	for _, n := range []int{1, 3, 5} {
		var out bytes.Buffer
		_, err := v.RunWorkflow(pipelineWorkflow(n), testOpts(func(o *RunOptions) {
			o.Stdout = &out
		}))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := fmt.Sprintf("total=%d", n*(n+1))
		if out.String() != want {
			t.Fatalf("n=%d: output = %q, want %q", n, out.String(), want)
		}
	}
}

func TestInvokeRegisteredWorkflow(t *testing.T) {
	v := New(testRegistry(t))
	if err := v.RegisterWorkflow(pipelineWorkflow(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Invoke("pipeline", testOpts(nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Invoke("ghost", testOpts(nil)); !errors.Is(err, ErrUnknownWorkflow) {
		t.Fatalf("unknown workflow: err = %v", err)
	}
}

func TestUnregisteredFunctionFails(t *testing.T) {
	v := New(NewRegistry())
	_, err := v.RunWorkflow(pipelineWorkflow(1), testOpts(nil))
	if !errors.Is(err, ErrUnknownFunction) {
		t.Fatalf("err = %v, want ErrUnknownFunction", err)
	}
}

func TestFunctionErrorAbortsWorkflow(t *testing.T) {
	r := NewRegistry()
	r.RegisterNative("boom", func(env *asstd.Env, ctx FuncContext) error {
		return errors.New("exploded")
	})
	v := New(r)
	w := &dag.Workflow{Name: "w", Functions: []dag.FuncSpec{{Name: "boom"}}}
	if _, err := v.RunWorkflow(w, testOpts(nil)); err == nil || !strings.Contains(err.Error(), "exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestFunctionPanicIsContained(t *testing.T) {
	r := NewRegistry()
	r.RegisterNative("crash", func(env *asstd.Env, ctx FuncContext) error {
		panic("bug in user code")
	})
	v := New(r)
	w := &dag.Workflow{Name: "w", Functions: []dag.FuncSpec{{Name: "crash"}}}
	_, err := v.RunWorkflow(w, testOpts(nil))
	if err == nil || !strings.Contains(err.Error(), "function fault") {
		t.Fatalf("panic not contained: %v", err)
	}
}

func TestStageWaitAccounted(t *testing.T) {
	r := NewRegistry()
	r.RegisterNative("skew", func(env *asstd.Env, ctx FuncContext) error {
		// Instance 0 finishes immediately; instance 1 busy-waits a bit.
		if ctx.Instance == 1 {
			for i := 0; i < 1_000_000; i++ {
				_ = i * i
			}
		}
		return nil
	})
	v := New(r)
	w := &dag.Workflow{Name: "w", Functions: []dag.FuncSpec{{Name: "skew", Instances: 2}}}
	res, err := v.RunWorkflow(w, testOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Clock.Total(metrics.StageWait) <= 0 {
		t.Fatal("fan-in wait not accounted")
	}
}

// guestAddSrc: a VM-tier function writing instance+instances via stdout.
const guestSrc = `
memory 65536
import proc_stdout 2 1
import buffer_register 4 1
import access_buffer 4 1
import clock_time_get 0 1
data 0 "guest-slot"
func run 2 2 1
  ; write instance number into memory at 100
  push 100
  local.get 0
  push '0'
  add
  store8
  push 100
  push 1
  hostcall proc_stdout
  drop
  push 0
  ret
end
`

func TestVMFunctionTier(t *testing.T) {
	r := NewRegistry()
	prog := asvm.MustAssemble(guestSrc)
	r.RegisterVM("guest", "c", VMFunc{
		Prog:   prog,
		Entry:  "run",
		Engine: asvm.EngineAOT,
	})
	v := New(r)
	var out bytes.Buffer
	w := &dag.Workflow{Name: "w", Functions: []dag.FuncSpec{
		{Name: "guest", Language: "c", Instances: 3},
	}}
	if _, err := v.RunWorkflow(w, testOpts(func(o *RunOptions) { o.Stdout = &out })); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if len(got) != 3 {
		t.Fatalf("guest output = %q", got)
	}
	for _, c := range []string{"0", "1", "2"} {
		if !strings.Contains(got, c) {
			t.Fatalf("instance %s missing from %q", c, got)
		}
	}
}

func TestVMRuntimeImageRead(t *testing.T) {
	// Python-tier model: the runtime image must be read through the
	// LibOS fs before the guest runs.
	dev := blockdev.NewMemDisk(8 << 20)
	fs, err := fatfs.Format(dev, fatfs.MkfsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("PYRT.BIN", make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}

	r := NewRegistry()
	r.RegisterVM("pyfunc", "python", VMFunc{
		Prog:         asvm.MustAssemble(guestSrc),
		Entry:        "run",
		Engine:       asvm.EngineInterp,
		RuntimeImage: "/PYRT.BIN",
	})
	v := New(r)
	w := &dag.Workflow{Name: "w", Functions: []dag.FuncSpec{
		{Name: "pyfunc", Language: "python"},
	}}
	if _, err := v.RunWorkflow(w, testOpts(func(o *RunOptions) { o.DiskImage = dev })); err != nil {
		t.Fatalf("python tier: %v", err)
	}

	// Without the image present, the run must fail loudly.
	r2 := NewRegistry()
	r2.RegisterVM("pyfunc", "python", VMFunc{
		Prog:         asvm.MustAssemble(guestSrc),
		Entry:        "run",
		Engine:       asvm.EngineInterp,
		RuntimeImage: "/MISSING.BIN",
	})
	v2 := New(r2)
	if _, err := v2.RunWorkflow(w, testOpts(func(o *RunOptions) {
		o.DiskImage = blockdev.NewMemDisk(8 << 20)
	})); err == nil {
		t.Fatal("missing runtime image not reported")
	}
}

func TestWatchdogHTTP(t *testing.T) {
	v := New(testRegistry(t))
	if err := v.RegisterWorkflow(pipelineWorkflow(2)); err != nil {
		t.Fatal(err)
	}
	wd := NewWatchdog(v)
	wd.OptionsFor = func(string) RunOptions { return testOpts(nil) }
	addr, err := wd.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer wd.Stop()

	resp, err := http.Post("http://"+addr+"/invoke/pipeline", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var ir InvokeResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	if ir.Workflow != "pipeline" || ir.E2EMillis <= 0 {
		t.Fatalf("response = %+v", ir)
	}
	if wd.Completed() != 1 {
		t.Fatalf("completed = %d", wd.Completed())
	}

	// Unknown workflow -> 404.
	resp2, err := http.Post("http://"+addr+"/invoke/ghost", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost status = %d", resp2.StatusCode)
	}

	// GET is rejected.
	resp3, err := http.Get("http://" + addr + "/invoke/pipeline")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", resp3.StatusCode)
	}
}

func TestWatchdogConcurrentInvocations(t *testing.T) {
	v := New(testRegistry(t))
	v.RegisterWorkflow(pipelineWorkflow(2))
	wd := NewWatchdog(v)
	wd.OptionsFor = func(string) RunOptions { return testOpts(nil) }
	addr, err := wd.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer wd.Stop()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post("http://"+addr+"/invoke/pipeline", "application/json", nil)
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if wd.Completed() != 8 {
		t.Fatalf("completed = %d", wd.Completed())
	}
}
