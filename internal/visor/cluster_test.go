package visor

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"alloystack/internal/blockdev"
	"alloystack/internal/cluster"
	"alloystack/internal/core"
	"alloystack/internal/dag"
	"alloystack/internal/pool"
)

// testPoolBuilder builds a minimal warm pool over a fresh memdisk:
// enough to boot, seal and fork the native pipeline workflow.
func testPoolBuilder(w *dag.Workflow) (pool.Spec, pool.Config, bool) {
	return pool.Spec{
		Workflow: w.Name,
		Core: core.Options{
			OnDemand:    true,
			BufHeapSize: 16 << 20,
			DiskImage:   blockdev.NewMemDisk(8 << 20),
		},
		Modules: []string{"mm", "fdtab", "fatfs", "stdio", "time"},
	}, pool.Config{Min: 2, Max: 4, Seed: 1}, true
}

// clusterNode boots a watchdog with the cluster surface wired:
// HTTP server, spec server, pool manager and pre-warm builder.
func clusterNode(t *testing.T, register bool) (*Watchdog, string) {
	t.Helper()
	v := New(testRegistry(t))
	if register {
		if err := v.RegisterWorkflow(pipelineWorkflow(2)); err != nil {
			t.Fatal(err)
		}
	}
	wd := NewWatchdog(v)
	wd.OptionsFor = func(string) RunOptions { return testOpts(nil) }
	wd.Pools = pool.NewManager()
	wd.PoolBuilder = testPoolBuilder
	addr, err := wd.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wd.StartSpecServer("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		wd.Stop()
		wd.Pools.StopAll()
	})
	return wd, addr
}

func TestClusterAdvertisement(t *testing.T) {
	wd, addr := clusterNode(t, true)
	wd.NodeID = "alpha"
	wd.MaxInflight = 7

	resp, err := http.Get("http://" + addr + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info cluster.NodeInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.ID != "alpha" {
		t.Errorf("ID = %q, want alpha", info.ID)
	}
	if info.Capacity != 7 {
		t.Errorf("Capacity = %d, want MaxInflight 7", info.Capacity)
	}
	if !info.Knows("pipeline") {
		t.Errorf("Workflows = %v, want pipeline advertised", info.Workflows)
	}
	if info.SpecAddr == "" {
		t.Error("SpecAddr empty; spec server not advertised")
	}
	if info.HasWarm("pipeline") {
		t.Error("no pool built yet, but a warm template is advertised")
	}
	if info.Degraded {
		t.Error("healthy node advertises degraded")
	}
}

func TestPrewarmPullsSpecFromPeer(t *testing.T) {
	owner, _ := clusterNode(t, true)
	target, targetAddr := clusterNode(t, false)

	if _, err := target.visor.Workflow("pipeline"); err == nil {
		t.Fatal("target must start without the workflow for this test to bite")
	}

	prewarm := func(body string) (*http.Response, PrewarmResponse) {
		t.Helper()
		resp, err := http.Post("http://"+targetAddr+"/pools/prewarm",
			"application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var pr PrewarmResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return resp, pr
	}

	body := fmt.Sprintf(`{"workflow":"pipeline","from":%q}`, owner.SpecAddr())
	resp, pr := prewarm(body)
	if resp.StatusCode != http.StatusOK || pr.Status != "warmed" {
		t.Fatalf("prewarm = %d %+v, want 200 warmed", resp.StatusCode, pr)
	}
	if pr.Warm == 0 {
		t.Error("pre-warm reported no warm clones; template boot should stock Min")
	}
	// The spec travelled over the framed transport and registered.
	if _, err := target.visor.Workflow("pipeline"); err != nil {
		t.Fatalf("target did not learn the workflow: %v", err)
	}
	if target.Pools.Get("pipeline") == nil {
		t.Fatal("target has no pool after pre-warm")
	}
	if target.Prewarmed() != 1 {
		t.Errorf("Prewarmed = %d, want 1", target.Prewarmed())
	}
	// The advertisement now carries the warm template.
	if !target.ClusterInfo().HasWarm("pipeline") {
		t.Error("advertisement lacks the pre-warmed template")
	}

	// An invocation on the pre-warmed node is a warm start end to end.
	inv, err := http.Post("http://"+targetAddr+"/invoke/pipeline", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer inv.Body.Close()
	var ir InvokeResponse
	if err := json.NewDecoder(inv.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	if inv.StatusCode != http.StatusOK || ir.Error != "" {
		t.Fatalf("invoke = %d %+v", inv.StatusCode, ir)
	}
	if !ir.WarmStart {
		t.Error("invocation after pre-warm fell back to a cold boot")
	}

	// A duplicate trigger observes the existing pool instead of
	// racing a second build.
	resp, pr = prewarm(body)
	if resp.StatusCode != http.StatusOK || pr.Status != "already-warm" {
		t.Fatalf("duplicate prewarm = %d %+v, want 200 already-warm", resp.StatusCode, pr)
	}
}

func TestPrewarmUnknownWorkflowNoPeer(t *testing.T) {
	_, targetAddr := clusterNode(t, false)
	resp, err := http.Post("http://"+targetAddr+"/pools/prewarm",
		"application/json", bytes.NewBufferString(`{"workflow":"pipeline"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404 (unknown workflow, no peer to pull from)", resp.StatusCode)
	}
}
