package visor

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"alloystack/internal/asstd"
	"alloystack/internal/dag"
)

func fastOpts() RunOptions {
	o := DefaultRunOptions()
	o.CostScale = 0
	o.BufHeapSize = 1 << 20
	return o
}

// Regression for the fixed-size (64) stage error channel: a stage whose
// instance count exceeds the old capacity used to block its goroutines
// forever once every instance failed.
func TestStageWithHundredFailingInstances(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterNative("err", func(env *asstd.Env, ctx FuncContext) error {
		return fmt.Errorf("instance %d failed", ctx.Instance)
	})
	v := New(reg)
	w := &dag.Workflow{Name: "wide-fail", Functions: []dag.FuncSpec{
		{Name: "err", Instances: 100},
	}}

	done := make(chan error, 1)
	go func() {
		_, err := v.RunWorkflow(w, fastOpts())
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("failing stage reported success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("100 failing instances deadlocked the stage")
	}
}

// The legacy MaxRetries knob still drives fault recovery when no Retry
// policy is set.
func TestLegacyMaxRetriesStillWorks(t *testing.T) {
	calls := 0
	reg := NewRegistry()
	reg.RegisterNative("flaky", func(env *asstd.Env, ctx FuncContext) error {
		calls++
		if calls < 3 {
			panic("transient")
		}
		return nil
	})
	v := New(reg)
	w := &dag.Workflow{Name: "flaky", Functions: []dag.FuncSpec{{Name: "flaky"}}}
	o := fastOpts()
	o.MaxRetries = 2
	res, err := v.RunWorkflow(w, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 2 || res.RetryBudget != 2 {
		t.Fatalf("retries = %d, budget = %d", res.Retries, res.RetryBudget)
	}
}

// Watchdog.Stop must drain in-flight invocations instead of aborting
// them mid-flight.
func TestWatchdogStopDrainsInflight(t *testing.T) {
	release := make(chan struct{})
	reg := NewRegistry()
	reg.RegisterNative("slowish", func(env *asstd.Env, ctx FuncContext) error {
		<-release
		return nil
	})
	v := New(reg)
	if err := v.RegisterWorkflow(&dag.Workflow{
		Name: "slowish", Functions: []dag.FuncSpec{{Name: "slowish"}},
	}); err != nil {
		t.Fatal(err)
	}
	wd := NewWatchdog(v)
	wd.OptionsFor = func(string) RunOptions { return fastOpts() }
	wd.StopGrace = 10 * time.Second
	addr, err := wd.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		status int
		err    error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Post("http://"+addr+"/invoke/slowish", "application/json", nil)
		if err != nil {
			resCh <- result{0, err}
			return
		}
		defer resp.Body.Close()
		resCh <- result{resp.StatusCode, nil}
	}()
	// Wait for the invocation to be in flight, then stop the node and
	// only afterwards let the function finish.
	for wd.Inflight() == 0 {
		time.Sleep(time.Millisecond)
	}
	stopped := make(chan error, 1)
	go func() { stopped <- wd.Stop() }()
	time.Sleep(20 * time.Millisecond)
	close(release)

	r := <-resCh
	if r.err != nil || r.status != http.StatusOK {
		t.Fatalf("in-flight invocation aborted by Stop: status=%d err=%v", r.status, r.err)
	}
	if err := <-stopped; err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if wd.Completed() != 1 {
		t.Fatalf("completed = %d", wd.Completed())
	}
}

// Unknown workflows and functions map to 404 via errors.Is, and a
// deadline failure maps to 504.
func TestWatchdogStatusMapping(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterNative("slowish", func(env *asstd.Env, ctx FuncContext) error {
		time.Sleep(200 * time.Millisecond)
		return nil
	})
	v := New(reg)
	for _, w := range []*dag.Workflow{
		{Name: "slowish", Functions: []dag.FuncSpec{{Name: "slowish"}}},
		{Name: "ghost-fn", Functions: []dag.FuncSpec{{Name: "no-such-function"}}},
	} {
		if err := v.RegisterWorkflow(w); err != nil {
			t.Fatal(err)
		}
	}
	wd := NewWatchdog(v)
	wd.OptionsFor = func(name string) RunOptions {
		o := fastOpts()
		if name == "slowish" {
			o.FuncTimeout = 10 * time.Millisecond
		}
		return o
	}
	addr, err := wd.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wd.Stop() })

	for _, tc := range []struct {
		workflow string
		want     int
	}{
		{"no-such-workflow", http.StatusNotFound},
		{"ghost-fn", http.StatusNotFound},
		{"slowish", http.StatusGatewayTimeout},
	} {
		resp, err := http.Post("http://"+addr+"/invoke/"+tc.workflow, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		var ir InvokeResponse
		json.NewDecoder(resp.Body).Decode(&ir)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status = %d (%s), want %d", tc.workflow, resp.StatusCode, ir.Error, tc.want)
		}
	}
}
