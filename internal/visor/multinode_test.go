package visor

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"alloystack/internal/asstd"
	"alloystack/internal/dag"
	"alloystack/internal/kvstore"
	"alloystack/internal/netstack"
	"alloystack/internal/xfer"
)

// chainRegistry registers a chain implementation that forwards a counter,
// incrementing it per hop, so cross-node continuity is checkable.
func chainRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	r.RegisterNative("hop", func(env *asstd.Env, ctx FuncContext) error {
		idx := hopIndex(t, ctx.Function)
		length := int(ctx.ParamInt("length", 2))
		if idx == 0 {
			b, err := asstd.NewBuffer(env, Slot(ctx.Function, 0, fmt.Sprintf("hop-%d", idx+1), 0), 8)
			if err != nil {
				return err
			}
			b.Bytes()[0] = 1
			return nil
		}
		in, err := asstd.FromSlot(env, Slot(fmt.Sprintf("hop-%d", idx-1), 0, ctx.Function, 0))
		if err != nil {
			return err
		}
		count := in.Bytes()[0] + 1
		in.Free()
		if idx == length-1 {
			return asstd.Printf(env, "hops=%d", count)
		}
		out, err := asstd.NewBuffer(env, Slot(ctx.Function, 0, fmt.Sprintf("hop-%d", idx+1), 0), 8)
		if err != nil {
			return err
		}
		out.Bytes()[0] = count
		return nil
	})
	return r
}

func hopIndex(t *testing.T, name string) int {
	t.Helper()
	var idx int
	if _, err := fmt.Sscanf(name[strings.LastIndexByte(name, '-')+1:], "%d", &idx); err != nil {
		t.Fatalf("bad hop name %s", name)
	}
	return idx
}

func hopChain(length int) *dag.Workflow {
	return dag.Chain("hops", length, func(i int) string {
		return fmt.Sprintf("hop-%d", i)
	}, map[string]string{"length": fmt.Sprint(length)})
}

func TestSplitAt(t *testing.T) {
	w := hopChain(6)
	front, back, err := SplitAt(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(front.Functions) != 3 || len(back.Functions) != 3 {
		t.Fatalf("split sizes = %d/%d", len(front.Functions), len(back.Functions))
	}
	// hop-3 lost its dependency on hop-2 (now fed by an imported slot).
	for _, f := range back.Functions {
		if f.Name == "hop-3" && len(f.DependsOn) != 0 {
			t.Fatalf("hop-3 deps = %v", f.DependsOn)
		}
	}
	if _, _, err := SplitAt(w, 0); err == nil {
		t.Fatal("cut 0 accepted")
	}
	if _, _, err := SplitAt(w, 6); err == nil {
		t.Fatal("cut beyond last stage accepted")
	}
}

func TestCrossSlots(t *testing.T) {
	w := hopChain(6)
	slots, err := CrossSlots(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 1 || slots[0] != Slot("hop-2", 0, "hop-3", 0) {
		t.Fatalf("cross slots = %v", slots)
	}
	// Fan edge: 2-instance producer feeding 3-instance consumer.
	fan := &dag.Workflow{
		Name: "fan",
		Functions: []dag.FuncSpec{
			{Name: "a", Instances: 2},
			{Name: "b", DependsOn: []string{"a"}, Instances: 3},
		},
	}
	slots, err = CrossSlots(fan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 6 {
		t.Fatalf("fan cross slots = %d, want 6", len(slots))
	}
}

// TestTwoNodeSplitRun runs a 6-hop chain split across two "nodes" (two
// visors), moving the boundary slot through a real TCP kvstore hop.
func TestTwoNodeSplitRun(t *testing.T) {
	w := hopChain(6)
	front, back, err := SplitAt(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	cross, err := CrossSlots(w, 3)
	if err != nil {
		t.Fatal(err)
	}

	node1 := New(chainRegistry(t))
	node2 := New(chainRegistry(t))

	// Node 1 runs the front subgraph and exports the boundary slots.
	ro1 := DefaultRunOptions()
	ro1.CostScale = 0
	ro1.BufHeapSize = 8 << 20
	ro1.ExportSlots = cross
	res1, err := node1.RunWorkflow(front, ro1)
	if err != nil {
		t.Fatalf("front: %v", err)
	}
	if len(res1.Exports) != 1 {
		t.Fatalf("exports = %v", res1.Exports)
	}

	// Boundary data crosses nodes through the external store (real TCP).
	store, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cli, err := kvstore.Dial(store.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for slot, data := range res1.Exports {
		if err := cli.Set(slot, data); err != nil {
			t.Fatal(err)
		}
	}
	imported := map[string][]byte{}
	for _, slot := range cross {
		data, err := cli.Get(slot)
		if err != nil {
			continue
		}
		imported[slot] = data
	}

	// Node 2 imports the slots and runs the back subgraph.
	var out bytes.Buffer
	ro2 := DefaultRunOptions()
	ro2.CostScale = 0
	ro2.BufHeapSize = 8 << 20
	ro2.ImportSlots = imported
	ro2.Stdout = &out
	if _, err := node2.RunWorkflow(back, ro2); err != nil {
		t.Fatalf("back: %v", err)
	}
	// 6 hops: head writes 1, five increments -> 6.
	if out.String() != "hops=6" {
		t.Fatalf("cross-node result = %q, want hops=6", out.String())
	}
}

// TestTwoNodeNetTransport runs the same split chain with the boundary
// slot shipped through the net transport's framed byte protocol over
// the in-repo virtual network: node 1 exports straight to a bridge
// node, node 2 imports from it, and the result must be byte-identical
// to the single-node run.
func TestTwoNodeNetTransport(t *testing.T) {
	w := hopChain(6)
	front, back, err := SplitAt(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	cross, err := CrossSlots(w, 3)
	if err != nil {
		t.Fatal(err)
	}

	// The bridge node listens on the shared virtual network; each visor
	// node dials it from its own NIC.
	hub := netstack.NewHub()
	bridgeNIC, err := hub.Attach(netstack.Addr{10, 9, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := netstack.NewStack(bridgeNIC).Listen(9100)
	if err != nil {
		t.Fatal(err)
	}
	bridge := xfer.NewBridge()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				bridge.ServeConn(conn)
				conn.Close()
			}()
		}
	}()
	dialBridge := func(last byte) *xfer.Peer {
		t.Helper()
		nic, err := hub.Attach(netstack.Addr{10, 9, 0, last})
		if err != nil {
			t.Fatal(err)
		}
		conn, err := netstack.NewStack(nic).Dial(netstack.Endpoint{Addr: netstack.Addr{10, 9, 0, 1}, Port: 9100})
		if err != nil {
			t.Fatal(err)
		}
		return xfer.NewPeer(conn)
	}

	// Node 1: front subgraph, boundary slots exported over the wire.
	exportPeer := dialBridge(2)
	defer exportPeer.Close()
	ro1 := DefaultRunOptions()
	ro1.CostScale = 0
	ro1.BufHeapSize = 8 << 20
	ro1.ExportSlots = cross
	ro1.ExportPeer = exportPeer
	res1, err := New(chainRegistry(t)).RunWorkflow(front, ro1)
	if err != nil {
		t.Fatalf("front: %v", err)
	}
	if len(res1.Exports) != 0 {
		t.Fatalf("exports should ship via peer, got %v", res1.Exports)
	}
	if bridge.Len() != 1 {
		t.Fatalf("bridge holds %d slots, want 1", bridge.Len())
	}
	if net := res1.Transfer.Kind(xfer.KindNet); net.Ops == 0 || net.Bytes == 0 {
		t.Fatalf("no net-transport traffic counted: %+v", net)
	}

	// Node 2: back subgraph, boundary slots imported over the wire.
	importPeer := dialBridge(3)
	defer importPeer.Close()
	var out bytes.Buffer
	ro2 := DefaultRunOptions()
	ro2.CostScale = 0
	ro2.BufHeapSize = 8 << 20
	ro2.ImportPeer = importPeer
	ro2.ImportNames = cross
	ro2.Stdout = &out
	if _, err := New(chainRegistry(t)).RunWorkflow(back, ro2); err != nil {
		t.Fatalf("back: %v", err)
	}
	if bridge.Len() != 0 {
		t.Fatalf("bridge not drained: %d slots left", bridge.Len())
	}

	// Byte-identical to the unsplit single-node run.
	var ref bytes.Buffer
	ro := DefaultRunOptions()
	ro.CostScale = 0
	ro.BufHeapSize = 8 << 20
	ro.Stdout = &ref
	if _, err := New(chainRegistry(t)).RunWorkflow(hopChain(6), ro); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), ref.Bytes()) {
		t.Fatalf("two-node output %q != single-node %q", out.String(), ref.String())
	}
}

func TestSingleNodeEquivalence(t *testing.T) {
	// The same chain unsplit must produce the same answer.
	var out bytes.Buffer
	v := New(chainRegistry(t))
	ro := DefaultRunOptions()
	ro.CostScale = 0
	ro.BufHeapSize = 8 << 20
	ro.Stdout = &out
	if _, err := v.RunWorkflow(hopChain(6), ro); err != nil {
		t.Fatal(err)
	}
	if out.String() != "hops=6" {
		t.Fatalf("single-node result = %q", out.String())
	}
}

func TestExportSkipsUnusedCandidates(t *testing.T) {
	// Exporting candidate slots the workload never registered is not an
	// error; they are simply absent from the result.
	r := NewRegistry()
	r.RegisterNative("one", func(env *asstd.Env, ctx FuncContext) error {
		b, err := asstd.NewBuffer(env, "present", 4)
		if err != nil {
			return err
		}
		copy(b.Bytes(), "yes!")
		return nil
	})
	v := New(r)
	ro := DefaultRunOptions()
	ro.CostScale = 0
	ro.BufHeapSize = 4 << 20
	ro.ExportSlots = []string{"present", "never-written"}
	res, err := v.RunWorkflow(&dag.Workflow{
		Name: "w", Functions: []dag.FuncSpec{{Name: "one"}},
	}, ro)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Exports) != 1 || string(res.Exports["present"]) != "yes!" {
		t.Fatalf("exports = %v", res.Exports)
	}
}

// TestRetryFaultTolerance: a function that faults on its first attempt
// succeeds on retry, with intermediate data intact (§3.1).
func TestRetryFaultTolerance(t *testing.T) {
	var attempts atomic.Int32
	r := NewRegistry()
	r.RegisterNative("seed", func(env *asstd.Env, ctx FuncContext) error {
		b, err := asstd.NewBuffer(env, "state", 5)
		if err != nil {
			return err
		}
		copy(b.Bytes(), "alive")
		return nil
	})
	r.RegisterNative("flaky", func(env *asstd.Env, ctx FuncContext) error {
		if attempts.Add(1) == 1 {
			panic("transient bug") // before consuming any slot
		}
		b, err := asstd.FromSlot(env, "state")
		if err != nil {
			return err
		}
		defer b.Free()
		return asstd.Printf(env, "read %s after retry", b.Bytes())
	})
	v := New(r)
	var out bytes.Buffer
	ro := DefaultRunOptions()
	ro.CostScale = 0
	ro.BufHeapSize = 4 << 20
	ro.MaxRetries = 2
	ro.Stdout = &out
	w := &dag.Workflow{
		Name: "w",
		Functions: []dag.FuncSpec{
			{Name: "seed"},
			{Name: "flaky", DependsOn: []string{"seed"}},
		},
	}
	res, err := v.RunWorkflow(w, ro)
	if err != nil {
		t.Fatalf("retry run: %v", err)
	}
	if res.Retries != 1 {
		t.Fatalf("retries = %d", res.Retries)
	}
	if out.String() != "read alive after retry" {
		t.Fatalf("output = %q", out.String())
	}
}

func TestRetryExhaustionFails(t *testing.T) {
	r := NewRegistry()
	r.RegisterNative("always", func(env *asstd.Env, ctx FuncContext) error {
		panic("permanent bug")
	})
	v := New(r)
	ro := DefaultRunOptions()
	ro.CostScale = 0
	ro.BufHeapSize = 4 << 20
	ro.MaxRetries = 2
	w := &dag.Workflow{Name: "w", Functions: []dag.FuncSpec{{Name: "always"}}}
	_, err := v.RunWorkflow(w, ro)
	if err == nil || !strings.Contains(err.Error(), "function fault") {
		t.Fatalf("err = %v", err)
	}
}

func TestOrdinaryErrorsNotRetried(t *testing.T) {
	var attempts atomic.Int32
	r := NewRegistry()
	r.RegisterNative("erring", func(env *asstd.Env, ctx FuncContext) error {
		attempts.Add(1)
		return errors.New("business-logic failure")
	})
	v := New(r)
	ro := DefaultRunOptions()
	ro.CostScale = 0
	ro.BufHeapSize = 4 << 20
	ro.MaxRetries = 3
	w := &dag.Workflow{Name: "w", Functions: []dag.FuncSpec{{Name: "erring"}}}
	if _, err := v.RunWorkflow(w, ro); err == nil {
		t.Fatal("error swallowed")
	}
	if attempts.Load() != 1 {
		t.Fatalf("ordinary error retried %d times", attempts.Load())
	}
}
