// Package visor implements as-visor, AlloyStack's global runtime layer
// (paper §3.3): the watchdog that receives invocation events, the
// orchestrator that instantiates a WFD per workflow invocation and runs
// its function instances in stage order, and the registry binding
// function names to their implementations in each language tier.
package visor

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"alloystack/internal/asstd"
	"alloystack/internal/asvm"
	"alloystack/internal/blockdev"
	"alloystack/internal/core"
	"alloystack/internal/dag"
	"alloystack/internal/faults"
	"alloystack/internal/journal"
	"alloystack/internal/metrics"
	"alloystack/internal/netstack"
	"alloystack/internal/pool"
	"alloystack/internal/ramfs"
	"alloystack/internal/scan"
	"alloystack/internal/trace"
	"alloystack/internal/xfer"
)

// Errors returned by the visor.
var (
	ErrUnknownFunction = errors.New("visor: function not registered")
	ErrUnknownWorkflow = errors.New("visor: workflow not registered")
	// ErrRejected wraps an admission-scan failure: a guest image the
	// workflow stages did not pass static verification (internal/scan).
	// The watchdog maps it to HTTP 403.
	ErrRejected = errors.New("visor: guest image rejected by admission scan")
)

// FuncContext is the runtime information handed to each function
// instance: which workflow/function/instance it is and the workflow's
// parameters. Slot naming helpers give fan-out and fan-in a convention.
type FuncContext struct {
	Workflow  string
	Function  string
	Instance  int // 0-based index among this function's instances
	Instances int // total parallel instances of this function
	Stage     int
	Params    map[string]string
}

// Param fetches a workflow parameter with a default.
func (c FuncContext) Param(key, def string) string {
	if v, ok := c.Params[key]; ok {
		return v
	}
	return def
}

// ParamInt fetches an integer parameter with a default.
func (c FuncContext) ParamInt(key string, def int64) int64 {
	if v, ok := c.Params[key]; ok {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}

// Slot builds a namespaced AsBuffer slot: "fn:i->fn:j" style keys keep
// fan-out edges distinct inside the WFD (paper §5's slot parameter).
func Slot(from string, fromIdx int, to string, toIdx int) string {
	return fmt.Sprintf("%s:%d->%s:%d", from, fromIdx, to, toIdx)
}

// NativeFunc is a native-tier (≈Rust) function body.
type NativeFunc func(env *asstd.Env, ctx FuncContext) error

// VMFunc is a guest-tier function: an ASVM program plus engine config.
type VMFunc struct {
	Prog  *asvm.Program
	Entry string
	// Args builds the entry-point arguments from the context.
	Args func(ctx FuncContext) []int64
	// Engine/OverheadFactor select the runtime model: AOT+1.3 for the
	// AlloyStack-C tier (Wasmtime), AOT+1.0 for Faasm-C (WAVM),
	// interpreter for the Python tier.
	Engine         asvm.EngineKind
	OverheadFactor float64
	// RuntimeImage, when set, is a file read through the LibOS
	// filesystem before execution — the Python-runtime initialisation
	// cost the paper identifies as the AS-Py bottleneck.
	RuntimeImage string
	// InitCost is the calibrated runtime-bootstrap work beyond the
	// image read (interpreter startup, module import machinery); it is
	// scaled by the run's CostScale.
	InitCost time.Duration
	// InSlots/OutSlots resolve the guest's logical edges to AsBuffer
	// slot names for the slot_send/slot_recv host calls.
	InSlots  func(ctx FuncContext) []string
	OutSlots func(ctx FuncContext) []string
}

// Registry maps (function, language) to an implementation.
type Registry struct {
	mu     sync.RWMutex
	native map[string]NativeFunc
	vm     map[string]VMFunc
}

// NewRegistry returns an empty function registry.
func NewRegistry() *Registry {
	return &Registry{
		native: make(map[string]NativeFunc),
		vm:     make(map[string]VMFunc),
	}
}

// RegisterNative binds a native-tier implementation.
func (r *Registry) RegisterNative(name string, fn NativeFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.native[name] = fn
}

// RegisterVM binds a guest-tier implementation under name+language.
func (r *Registry) RegisterVM(name, language string, vf VMFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.vm[name+"/"+language] = vf
}

func (r *Registry) lookup(name, language string) (NativeFunc, *VMFunc, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	// Generic implementations register a base name and serve every
	// node derived from it ("chain-7" -> "chain"); the instance learns
	// its position from the context.
	candidates := []string{name}
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		candidates = append(candidates, name[:i])
	}
	if language == "" || language == "native" {
		for _, c := range candidates {
			if fn, ok := r.native[c]; ok {
				return fn, nil, nil
			}
		}
		return nil, nil, fmt.Errorf("%w: %s (native)", ErrUnknownFunction, name)
	}
	for _, c := range candidates {
		if vf, ok := r.vm[c+"/"+language]; ok {
			return nil, &vf, nil
		}
	}
	return nil, nil, fmt.Errorf("%w: %s (%s)", ErrUnknownFunction, name, language)
}

// RunOptions configure one workflow invocation.
type RunOptions struct {
	// OnDemand / IFI / CostScale / MemLimit map directly onto the WFD
	// options (see core.Options).
	OnDemand  bool
	IFI       bool
	CostScale float64
	MemLimit  uint64
	// BufHeapSize bounds the intermediate-data heap.
	BufHeapSize uint64

	// DiskImage supplies the WFD's input filesystem image (already
	// populated by the workload's setup phase). May be nil.
	DiskImage blockdev.Device
	// UseRamfs/Ramfs run the Figure 16 in-memory-filesystem mode.
	UseRamfs bool
	Ramfs    *ramfs.FS

	// Hub/IP attach the WFD to the virtual network when set.
	Hub *netstack.Hub
	IP  netstack.Addr

	// Stdout captures function console output.
	Stdout io.Writer

	// RefPassing selects AsBuffer reference passing for intermediate
	// data (the AlloyStack default). Workload implementations consult
	// it to fall back to file-mediated transfer for the Figure 14
	// ablation ("when reference passing is disabled, AlloyStack uses
	// files as an intermediary mechanism").
	RefPassing bool

	// Transfer pins the data plane for intermediate data to one of
	// xfer.Kinds ("refpass", "file", "kv", "net"). Empty resolves from
	// RefPassing: refpass when set, the file spill path otherwise. A
	// function spec can override per edge with Params["transfer"].
	Transfer string

	// KV backs Transfer="kv": the store client payloads round-trip
	// through (the OpenFaaS/Faasm-style third-party forwarding path).
	KV xfer.KVClient

	// Peer backs Transfer="net" and the ExportPeer/ImportPeer bridge
	// hooks below: a framed connection to an xfer.Bridge.
	Peer *xfer.Peer

	// MaxRetries restarts a function instance that faults (panics) up
	// to this many extra times, provided the WFD survived — the paper's
	// §3.1 retry-based fault tolerance for idempotent functions.
	// Superseded by Retry when that is set.
	MaxRetries int

	// Retry, when non-nil, replaces the bare MaxRetries loop with a
	// full policy: exponential backoff with deterministic jitter, a
	// max-elapsed cap and a per-instance budget.
	Retry *faults.RetryPolicy

	// Ctx bounds the whole invocation; cancelling it stops every
	// in-flight function instance. Nil means context.Background().
	Ctx context.Context
	// Deadline, when positive, is the per-invocation wall-clock budget
	// layered on top of Ctx.
	Deadline time.Duration
	// FuncTimeout, when positive, bounds each function attempt; an
	// attempt that exceeds it fails with a deadline error (timeouts are
	// not retried — the abandoned attempt may still be running).
	FuncTimeout time.Duration

	// Faults, when non-nil, is the deterministic fault-injection plan
	// consulted before every function attempt (see internal/faults).
	Faults *faults.Plan

	// Trace, when non-nil, receives the invocation's span tree: a root
	// span per run, one span per stage barrier and function instance,
	// phase spans for the Figure-15 breakdown, and per-edge transfer
	// spans. A nil tracer is the no-op sink — tracing is cheap enough
	// to leave the plumbing unconditional. When the tracer carries a
	// flight recorder, a failed run dumps it to Stdout automatically.
	Trace *trace.Tracer

	// ImportSlots pre-registers intermediate data before the first
	// stage; ExportSlots drains slots after the last stage (multi-node
	// bridging, §9 — see SplitAt/CrossSlots).
	ImportSlots map[string][]byte
	ExportSlots []string

	// Pool, when non-nil, serves this invocation from a warm-instance
	// pool: the run tries Pool.Get() for a pre-forked clone of the
	// workflow's template WFD and falls back to a cold Instantiate on a
	// miss. Hub-attached runs always boot cold (clones cannot share a
	// NIC address).
	Pool *pool.Pool
	// WarmStart gates Pool usage per invocation; the watchdog maps the
	// ?warm=0 escape hatch onto it. Ignored when Pool is nil.
	WarmStart bool
	// QueueWait is how long the request waited in the admission queue
	// before the run started (set by the watchdog's scheduler); it is
	// echoed into the trace as a "queue" span and into RunResult.
	QueueWait time.Duration

	// Durable journals the run through internal/journal: a write-ahead
	// record at every stage barrier, barrier-crossing slots spilled, and
	// a terminal seal — so a crashed run can be resumed from its last
	// committed stage. Requires Journal. Failed durable runs unwind
	// committed stages' declared compensations (saga) before sealing.
	Durable bool
	// Journal is the store durable runs write to (and resumes read
	// from). Ignored unless Durable is set or Resume is non-empty.
	Journal *journal.Store
	// RunID pins the durable run's identifier; empty allocates one.
	RunID string
	// Resume re-opens the named journaled run instead of starting
	// fresh: committed stages are skipped (their spilled outputs are
	// re-imported), and a run that had failed terminally goes straight
	// to the saga unwind. Sealed runs refuse with journal.ErrSealed.
	Resume string
	// CrashFn is invoked when a faults.Crash point fires, after the
	// journal is closed unsealed — the kill-the-process hook
	// (integration tests install os.Exit). Nil aborts the run
	// in-process with ErrCrashPoint instead.
	CrashFn func(point string)

	// ExportPeer, when set, ships ExportSlots through the net
	// transport to the far side's xfer.Bridge instead of returning
	// them in RunResult.Exports — the §9 multi-node cut over a real
	// byte stream. ImportPeer is the receiving half: ImportNames are
	// pulled from the bridge and registered as AsBuffers before the
	// first stage (names absent on the bridge are skipped, mirroring
	// the export side's never-registered slots).
	ExportPeer  *xfer.Peer
	ImportPeer  *xfer.Peer
	ImportNames []string
}

// DefaultRunOptions are the paper's standard AlloyStack configuration.
func DefaultRunOptions() RunOptions {
	return RunOptions{
		OnDemand:   true,
		RefPassing: true,
		CostScale:  1.0,
	}
}

// RunResult summarises one workflow invocation.
type RunResult struct {
	E2E time.Duration
	// ColdStart is the WFD boot latency: a full Instantiate for cold
	// runs, the snapshot-fork cost for warm ones.
	ColdStart time.Duration
	// WarmStart reports whether the run was served by a pooled clone.
	WarmStart bool
	// QueueWait echoes the admission-queue wait from RunOptions.
	QueueWait time.Duration
	// Stages is the per-stage wall time in order.
	Stages []time.Duration
	// Clock aggregates the read-input/compute/transfer/wait breakdown.
	Clock *metrics.StageClock
	// MemPeak is the WFD's peak mapped memory.
	MemPeak uint64
	// Crossings counts MPK domain crossings across all functions.
	Crossings uint64
	// Retries counts function restarts absorbed by fault tolerance.
	Retries int
	// RetryBudget echoes the per-instance retry budget that was in
	// force, so callers can relate Retries to what was available.
	RetryBudget int
	// RetryWait is the total backoff time spent between retries.
	RetryWait time.Duration
	// Exports carries the drained ExportSlots data (multi-node bridge).
	Exports map[string][]byte
	// Transfer aggregates per-transport counters (bytes moved, copies
	// made, slots reused) for the run's data plane.
	Transfer *metrics.TransportStats
	// TraceID echoes the tracer's (possibly adopted) trace identifier,
	// "" when the run was not traced.
	TraceID string
	// RunID is the durable run's journal identifier ("" for
	// non-durable runs).
	RunID string
	// Resumed reports the run was re-opened from an existing journal;
	// StagesSkipped counts the committed stages the resume did not
	// re-execute.
	Resumed       bool
	StagesSkipped int
	// Compensations counts saga handlers executed by this invocation.
	Compensations int
	// Verdict is the journal's terminal verdict for durable runs:
	// "ok", "compensated" or "comp-failed".
	Verdict string
}

// EdgeTransfer resolves which transport kind a function's edges use:
// the spec's "transfer" param wins, then the run-level Transfer knob,
// then the RefPassing default (refpass on, file spill off). asctl
// describe uses the same resolution to audit configs before invocation.
func EdgeTransfer(params map[string]string, opts RunOptions) string {
	if v := params["transfer"]; v != "" {
		return v
	}
	if opts.Transfer != "" {
		return opts.Transfer
	}
	if opts.RefPassing {
		return xfer.KindRefpass
	}
	return xfer.KindFile
}

// Visor drives workflow execution on one node.
type Visor struct {
	Funcs *Registry

	// ImportAllowlist is the host-import set granted to guest images at
	// admission. Nil means scan.WASIAllowlist(). Fix it before the
	// first invocation: admission verdicts are cached per program.
	ImportAllowlist map[string]bool

	mu        sync.RWMutex
	workflows map[string]*dag.Workflow

	// verified caches the admission verdict per *asvm.Program: the same
	// bytecode is proven once per visor, not once per invocation.
	verified    sync.Map // *asvm.Program -> error (nil sentinel: verified OK)
	scanRejects atomic.Int64
}

// New returns a visor with the given function registry.
func New(funcs *Registry) *Visor {
	return &Visor{Funcs: funcs, workflows: make(map[string]*dag.Workflow)}
}

// RegisterWorkflow binds a workflow definition to its invocation name.
func (v *Visor) RegisterWorkflow(w *dag.Workflow) error {
	if err := w.Validate(); err != nil {
		return err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.workflows[w.Name] = w
	return nil
}

// Workflow retrieves a registered workflow.
func (v *Visor) Workflow(name string) (*dag.Workflow, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	w, ok := v.workflows[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownWorkflow, name)
	}
	return w, nil
}

// Workflows lists registered workflow names, sorted.
func (v *Visor) Workflows() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	names := make([]string, 0, len(v.workflows))
	for n := range v.workflows {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ScanRejects reports how many invocations the admission scan has
// rejected since the visor started (the watchdog exports it as
// alloystack_scan_rejects_total).
func (v *Visor) ScanRejects() int64 { return v.scanRejects.Load() }

// admitGuests statically verifies every guest image the workflow's
// stages would execute, before any WFD boots — §6's
// validate-before-execute: an image that could jump between
// instructions, unbalance the shared value stack or call an
// off-allowlist host import never reaches an engine. Native-tier
// functions carry no image and pass trivially; unknown functions are
// left for the stage loop to report with its own error.
func (v *Visor) admitGuests(w *dag.Workflow, stages [][]dag.FuncSpec) error {
	allow := v.ImportAllowlist
	if allow == nil {
		allow = scan.WASIAllowlist()
	}
	for _, stage := range stages {
		for _, spec := range stage {
			_, vm, err := v.Funcs.lookup(spec.Name, spec.Language)
			if err != nil || vm == nil {
				continue
			}
			if verr := v.verifyProgram(vm.Prog, allow); verr != nil {
				v.scanRejects.Add(1)
				return fmt.Errorf("%w: workflow %q function %q: %v",
					ErrRejected, w.Name, spec.Name, verr)
			}
		}
	}
	return nil
}

func (v *Visor) verifyProgram(prog *asvm.Program, allow map[string]bool) error {
	if cached, ok := v.verified.Load(prog); ok {
		if cached == nil {
			return nil
		}
		return cached.(error)
	}
	_, err := scan.Verify(prog, allow)
	if err != nil {
		v.verified.Store(prog, err)
		return err
	}
	v.verified.Store(prog, nil)
	return nil
}

// Invoke runs a registered workflow by name.
func (v *Visor) Invoke(name string, opts RunOptions) (*RunResult, error) {
	w, err := v.Workflow(name)
	if err != nil {
		return nil, err
	}
	return v.RunWorkflow(w, opts)
}

// retryPolicy resolves the effective retry policy: the explicit Retry
// policy when set, otherwise the legacy MaxRetries knob as an
// immediate-retry (no backoff) policy.
func (o RunOptions) retryPolicy() faults.RetryPolicy {
	if o.Retry != nil {
		return *o.Retry
	}
	return faults.RetryPolicy{MaxRetries: o.MaxRetries}
}

// RunWorkflow executes one invocation of w: instantiate the WFD, run the
// DAG stage by stage with a barrier between stages, destroy the WFD.
// This is steps ①-⑦ of Figure 4.
//
// Recovery semantics (§3.1): a function attempt that faults (panics) is
// restarted under the retry policy while the WFD and its intermediate
// data stay intact. When an instance exhausts its retry budget — or
// fails with a non-retryable error, including a FuncTimeout deadline —
// its stage's sibling instances are cancelled and the invocation fails.
// Cancelling opts.Ctx (or exceeding opts.Deadline) stops all in-flight
// instances.
//
// Observability: when opts.Trace is set, the run produces a span tree
// (invoke > stage > instance > phase/xfer/syscall) and — if the tracer
// carries a flight recorder — a failed, timed-out or chaos-killed run
// dumps the recorder to opts.Stdout so the report names what the
// failure interrupted.
func (v *Visor) RunWorkflow(w *dag.Workflow, opts RunOptions) (*RunResult, error) {
	res, err := v.runWorkflow(w, opts)
	if err != nil {
		opts.Trace.FlightDump(opts.Stdout,
			fmt.Sprintf("invocation %q failed: %v", w.Name, err))
	}
	return res, err
}

func (v *Visor) runWorkflow(w *dag.Workflow, opts RunOptions) (*RunResult, error) {
	stages, err := w.Stages()
	if err != nil {
		return nil, err
	}
	if err := v.admitGuests(w, stages); err != nil {
		return nil, err
	}

	// Durability: open (or resume) the run's write-ahead journal before
	// any work starts. The handle is closed on every exit path; Seal
	// closes it too, so the deferred Close is a no-op after a seal.
	var dj *durableRun
	if opts.Durable || opts.Resume != "" {
		if opts.Journal == nil {
			// Never degrade silently: a resume request without a journal
			// store would re-run the whole workflow fresh and non-durable.
			return nil, errors.New("visor: RunOptions.Durable/Resume require a Journal store")
		}
		var err error
		dj, err = openDurable(w, opts)
		if err != nil {
			return nil, err
		}
		defer dj.jr.Close()
	}

	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	var cancel context.CancelFunc
	if opts.Deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, opts.Deadline)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	root := opts.Trace.Start("invoke:"+w.Name, trace.CatInvoke)
	defer root.End()

	start := time.Now()
	if opts.QueueWait > 0 {
		// The admission wait happened before this run started; chart it
		// as a completed span leading into the root.
		root.Complete("queue", trace.CatQueue, start.Add(-opts.QueueWait), opts.QueueWait)
	}

	// Boot the WFD: a warm clone from the pool when allowed, a cold
	// Instantiate otherwise. Hub-attached runs always boot cold — a
	// clone cannot share its template's NIC address.
	var wfd *core.WFD
	warm := false
	if opts.Pool != nil && opts.WarmStart && opts.Hub == nil {
		if clone, ok := opts.Pool.Get(); ok {
			clone.SetStdout(opts.Stdout)
			wfd = clone
			warm = true
		}
	}
	bootName := "boot(cold)"
	if warm {
		bootName = "boot(warm)"
	}
	bootSpan := root.Child(bootName, trace.CatBoot)
	if wfd == nil {
		var err error
		wfd, err = core.Instantiate(core.Options{
			MemLimit:    opts.MemLimit,
			BufHeapSize: opts.BufHeapSize,
			DiskImage:   opts.DiskImage,
			UseRamfs:    opts.UseRamfs,
			Ramfs:       opts.Ramfs,
			Hub:         opts.Hub,
			IP:          opts.IP,
			Stdout:      opts.Stdout,
			OnDemand:    opts.OnDemand,
			IFI:         opts.IFI,
			CostScale:   opts.CostScale,
		})
		if err != nil {
			bootSpan.End()
			return nil, err
		}
	}
	bootSpan.End()
	if warm {
		defer opts.Pool.Recycle(wfd)
	} else {
		defer wfd.Destroy()
	}

	policy := opts.retryPolicy()
	res := &RunResult{
		ColdStart:   wfd.ColdStart,
		WarmStart:   warm,
		QueueWait:   opts.QueueWait,
		Clock:       metrics.NewStageClock(),
		RetryBudget: policy.MaxRetries,
		Transfer:    metrics.NewTransportStats(),
	}

	// Data-plane resources shared by every function instance of this
	// run: one buffer pool (freed AsBuffers serve later stages), one
	// spill-path registry (cross-stage 8.3 collisions surface), one
	// counter table.
	plane := runPlane{
		pool:  xfer.NewBufPool(),
		paths: xfer.NewPathRegistry(),
		stats: res.Transfer,
		opts:  opts,
	}

	if len(opts.ImportSlots) > 0 {
		sp := root.Child("import-slots", trace.CatXfer)
		err := importSlots(wfd, opts.ImportSlots)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("visor: import slots: %w", err)
		}
	}
	if opts.ImportPeer != nil && len(opts.ImportNames) > 0 {
		// Stitch into the exporting node's trace: the far side parked
		// its trace ID on the bridge before the payload slots.
		if id, ok := opts.ImportPeer.FetchTraceID(); ok {
			opts.Trace.Adopt(id)
		}
		tr := xfer.NewNet(opts.ImportPeer, nil, res.Transfer)
		sp := root.Child("import-via-net", trace.CatXfer)
		err := importVia(wfd, tr, opts.ImportNames)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("visor: import via net: %w", err)
		}
	}

	if dj != nil {
		res.RunID = dj.jr.ID()
		if dj.st != nil {
			res.Resumed = true
			dj.flightDump(opts.Trace,
				fmt.Sprintf("run %s resumed from stage %d", res.RunID, dj.resumeFrom))
			if dj.st.Failed {
				// The crash interrupted the saga unwind, not the forward
				// pass: finish compensating, seal, and report the
				// original failure.
				verdict, cerr := v.unwind(wfd, plane, w, stages, dj, opts, res, root)
				if cerr != nil {
					return res, cerr
				}
				if err := dj.jr.Seal(verdict); err != nil {
					return nil, err
				}
				res.Verdict = verdict
				dj.flightDump(opts.Trace, "sealed "+verdict)
				res.E2E = time.Since(start)
				res.TraceID = opts.Trace.TraceID()
				return res, fmt.Errorf("visor: run %s had failed terminally: %s (saga verdict %s)",
					res.RunID, dj.st.FailDetail, verdict)
			}
			if err := dj.importCommitted(wfd, root, stages); err != nil {
				return nil, err
			}
		}
	}

	var retryMu sync.Mutex
	// laneSeq gives every function instance of the run its own trace
	// lane (Chrome tid), so parallel instances render as parallel rows.
	laneSeq := int64(0)

	for si, stage := range stages {
		if dj != nil && si < dj.resumeFrom {
			// Committed before the crash: the journal proves this stage's
			// outputs are durable (and importCommitted restored them), so
			// the resume never re-executes its producers.
			res.StagesSkipped++
			res.Stages = append(res.Stages, 0)
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("visor: stage %d not started: %w", si, err)
		}
		if dj != nil {
			if err := dj.crash(opts, fmt.Sprintf("before-stage:%d", si)); err != nil {
				return res, err
			}
			if err := dj.jr.StageStarted(si); err != nil {
				return nil, err
			}
		}
		stageSpan := root.Child(fmt.Sprintf("stage-%d", si), trace.CatStage)
		stageStart := time.Now()
		// stageCtx lets a terminally failed instance cancel its
		// in-flight siblings instead of letting them run to completion
		// on a doomed stage.
		stageCtx, stageCancel := context.WithCancel(ctx)
		var wg sync.WaitGroup
		total := 0
		for _, spec := range stage {
			total += spec.InstancesOf()
		}
		// Sized to the stage's instance count: every instance can
		// deposit its error without blocking even if all of them fail.
		errCh := make(chan error, total)
		var doneMu sync.Mutex
		var firstDone, lastDone time.Time

		for _, spec := range stage {
			native, vm, err := v.Funcs.lookup(spec.Name, spec.Language)
			if err != nil {
				stageCancel()
				stageSpan.End()
				return nil, err
			}
			// Propagate run-level knobs into the function parameters so
			// workload code can honour the reference-passing ablation.
			params := make(map[string]string, len(spec.Params)+1)
			for k, val := range spec.Params {
				params[k] = val
			}
			if opts.RefPassing {
				params["__refpass"] = "1"
			} else {
				params["__refpass"] = "0"
			}
			n := spec.InstancesOf()
			for i := 0; i < n; i++ {
				fctx := FuncContext{
					Workflow:  w.Name,
					Function:  spec.Name,
					Instance:  i,
					Instances: n,
					Stage:     si,
					Params:    params,
				}
				kind := EdgeTransfer(params, opts)
				instSpan := stageSpan.Child(
					fmt.Sprintf("%s[%d]", fctx.Function, fctx.Instance), trace.CatFunc)
				instSpan.SetLane(laneSeq)
				laneSeq++
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer instSpan.End()
					body := func(env *asstd.Env) error {
						env.Clock = res.Clock
						env.Span = instSpan
						tr, terr := plane.transport(kind, env)
						if terr != nil {
							return terr
						}
						env.SetTransport(xfer.WithTrace(tr, instSpan))
						if native != nil {
							return native(env, fctx)
						}
						return runVM(env, fctx, *vm, opts.CostScale, wfd)
					}
					ferr := runInstance(stageCtx, wfd, fctx, instSpan, body, opts, policy, res, &retryMu)
					doneMu.Lock()
					now := time.Now()
					if firstDone.IsZero() {
						firstDone = now
					}
					lastDone = now
					doneMu.Unlock()
					if ferr != nil {
						errCh <- ferr
						stageCancel()
					}
				}()
			}
		}
		wg.Wait()
		stageCancel()
		close(errCh)
		// Fan-in synchronisation wait: faster instances idle until the
		// slowest finishes (the unhatched area of Figure 15). Clock and
		// span are charged from the same window so the exported trace
		// agrees with the stage breakdown exactly.
		if !firstDone.IsZero() {
			wait := lastDone.Sub(firstDone)
			res.Clock.Add(metrics.StageWait, wait)
			stageSpan.Complete(metrics.StageWait.String(), trace.CatPhase, firstDone, wait)
		}
		stageSpan.End()
		if ferr := pickStageError(errCh); ferr != nil {
			ferr = fmt.Errorf("visor: stage %d: %w", si, ferr)
			if dj == nil {
				return nil, ferr
			}
			// Terminal failure of a durable run: journal it, unwind the
			// committed prefix as a saga, seal with the unwind's verdict.
			// Any in-flight async barrier commits settle first, so the
			// unwind sees the true committed prefix.
			if serr := dj.settle(); serr != nil {
				return nil, serr
			}
			if err := dj.jr.Failed(si, ferr.Error()); err != nil {
				return nil, err
			}
			verdict, cerr := v.unwind(wfd, plane, w, stages, dj, opts, res, root)
			if cerr != nil {
				return res, cerr
			}
			if err := dj.jr.Seal(verdict); err != nil {
				return nil, err
			}
			res.Verdict = verdict
			dj.flightDump(opts.Trace, "sealed "+verdict)
			return res, ferr
		}
		res.Stages = append(res.Stages, time.Since(stageStart))
		if dj != nil {
			if err := dj.crash(opts, fmt.Sprintf("after-stage:%d", si)); err != nil {
				return res, err
			}
			if err := dj.barrier(wfd, root, stages, opts.ExportSlots, si); err != nil {
				return nil, fmt.Errorf("visor: journal barrier %d: %w", si, err)
			}
			dj.flightDump(opts.Trace, fmt.Sprintf("stage %d barrier", si))
			if err := dj.crash(opts, fmt.Sprintf("after-commit:%d", si)); err != nil {
				return res, err
			}
		}
	}

	if len(opts.ExportSlots) > 0 {
		if opts.ExportPeer != nil {
			// Park the trace ID before the payload slots so the importing
			// node can stitch its half of the run into this trace.
			if opts.Trace.Enabled() {
				_ = opts.ExportPeer.ShipTraceID(opts.Trace.TraceID())
			}
			tr := xfer.NewNet(opts.ExportPeer, nil, res.Transfer)
			sp := root.Child("export-via-net", trace.CatXfer)
			err := exportVia(wfd, tr, opts.ExportSlots)
			sp.End()
			if err != nil {
				return nil, fmt.Errorf("visor: export via net: %w", err)
			}
		} else {
			exports, err := exportSlots(wfd, opts.ExportSlots)
			if err != nil {
				return nil, fmt.Errorf("visor: export slots: %w", err)
			}
			res.Exports = exports
		}
	}

	if dj != nil {
		// Drain any in-flight async barrier commits before sealing: the
		// ok-seal asserts every stage is durable.
		if serr := dj.settle(); serr != nil {
			return nil, serr
		}
		if err := dj.jr.Seal("ok"); err != nil {
			return nil, err
		}
		res.Verdict = "ok"
		dj.flightDump(opts.Trace, "sealed ok")
	}

	res.MemPeak = wfd.MemoryUsage()
	res.E2E = time.Since(start)
	res.TraceID = opts.Trace.TraceID()
	return res, nil
}

// runPlane carries the per-run shared halves of the data plane; the
// per-env transport wrappers built around them are cheap.
type runPlane struct {
	pool  *xfer.BufPool
	paths *xfer.PathRegistry
	stats *metrics.TransportStats
	opts  RunOptions
}

// transport builds the env-bound transport of the given kind, sharing
// the run-wide pool, path registry, store client and peer connection.
func (p runPlane) transport(kind string, env *asstd.Env) (xfer.Transport, error) {
	return xfer.New(kind, xfer.Config{
		Env:   env,
		Pool:  p.pool,
		Paths: p.paths,
		KV:    p.opts.KV,
		Peer:  p.opts.Peer,
		Stats: p.stats,
	})
}

// runInstance drives one function instance through the retry policy:
// consult the fault plan, run the attempt under the per-attempt timeout,
// and on a fault (panic) back off and restart while the budget and the
// stage context allow. Only faults are retried; ordinary errors are
// programming results, and timeouts are not retried because the
// abandoned attempt may still be executing.
func runInstance(ctx context.Context, wfd *core.WFD, fctx FuncContext,
	span *trace.Span, body func(env *asstd.Env) error, opts RunOptions,
	policy faults.RetryPolicy, res *RunResult, retryMu *sync.Mutex) error {
	start := time.Now()
	var ferr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("visor: %s[%d]: %w", fctx.Function, fctx.Instance, err)
		}
		attemptBody := body
		if d := opts.Faults.FuncDelay(fctx.Function, fctx.Instance, attempt); d > 0 {
			span.Event(fmt.Sprintf("injected delay %s attempt %d", d, attempt))
			if err := sleepCtx(ctx, d); err != nil {
				return fmt.Errorf("visor: %s[%d]: %w", fctx.Function, fctx.Instance, err)
			}
		}
		if opts.Faults.FuncPanic(fctx.Function, fctx.Instance, attempt) {
			span.Event(fmt.Sprintf("injected panic attempt %d", attempt))
			a := attempt
			attemptBody = func(env *asstd.Env) error {
				panic(fmt.Sprintf("faults: injected panic %s[%d] attempt %d",
					fctx.Function, fctx.Instance, a))
			}
		}
		attemptSpan := span.Child(fmt.Sprintf("attempt-%d", attempt), trace.CatAttempt)
		ferr = runAttempt(ctx, wfd, fctx.Function, attemptBody, opts.FuncTimeout)
		if ferr != nil {
			attemptSpan.SetAttr("error", ferr.Error())
		}
		attemptSpan.End()
		if ferr == nil || !errors.Is(ferr, core.ErrFunctionFault) {
			return ferr
		}
		if !policy.Allow(attempt, time.Since(start)) {
			return ferr
		}
		retryMu.Lock()
		res.Retries++
		res.RetryWait += policy.Backoff(attempt)
		retryMu.Unlock()
		span.Event(fmt.Sprintf("retry after attempt %d", attempt))
		if err := policy.Sleep(ctx, attempt); err != nil {
			return fmt.Errorf("visor: %s[%d]: %w", fctx.Function, fctx.Instance, err)
		}
	}
}

// runAttempt executes one attempt, bounded by the per-function timeout
// when set. A timed-out attempt returns an error satisfying
// errors.Is(err, context.DeadlineExceeded).
func runAttempt(ctx context.Context, wfd *core.WFD, name string,
	body func(env *asstd.Env) error, timeout time.Duration) error {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return wfd.RunCtx(ctx, name, body)
}

// sleepCtx sleeps d or returns the context error if cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// pickStageError selects the most informative error from a failed
// stage: sibling instances cancelled *because* another instance failed
// report context.Canceled, which would mask the root cause, so any
// non-cancellation error wins.
func pickStageError(errCh <-chan error) error {
	var first error
	for ferr := range errCh {
		if first == nil {
			first = ferr
		}
		if !errors.Is(ferr, context.Canceled) {
			return ferr
		}
	}
	return first
}

// runVM executes a guest-tier function: instantiate the ASVM module with
// the WASI bindings over this env, optionally paying the runtime-image
// initialisation read, then call the entry point.
func runVM(env *asstd.Env, ctx FuncContext, vf VMFunc, costScale float64, wfd *core.WFD) error {
	warm := vf.RuntimeImage != "" && wfd.RuntimeWarm(vf.RuntimeImage)
	if vf.RuntimeImage != "" && !warm {
		// Cold Python-tier runtime init: stream the runtime image
		// through the LibOS filesystem, once per instance (the paper's
		// §8.5 file-reading bottleneck at higher instance counts). A
		// warm clone skips this entirely — the initialised runtime pages
		// arrived with the snapshot.
		if err := asstd.MountFS(env); err != nil {
			return err
		}
		if _, err := asstd.ReadFile(env, vf.RuntimeImage); err != nil {
			return fmt.Errorf("visor: runtime image: %w", err)
		}
	}
	if vf.InitCost > 0 && costScale > 0 && !warm {
		// Interpreter bootstrap happens once per WFD (shared address
		// space); later instances find the runtime already initialised,
		// and warm clones inherit the template's paid bootstrap.
		if wfd.FirstRuntimeInit(vf.RuntimeImage) {
			time.Sleep(time.Duration(float64(vf.InitCost) * costScale))
		}
	}
	l := asvm.NewLinker()
	var in, out []string
	if vf.InSlots != nil {
		in = vf.InSlots(ctx)
	}
	if vf.OutSlots != nil {
		out = vf.OutSlots(ctx)
	}
	asstd.BindWASISlots(l, env, in, out)
	inst, err := l.Instantiate(vf.Prog, asvm.Config{
		Engine:         vf.Engine,
		OverheadFactor: vf.OverheadFactor,
	})
	if err != nil {
		return err
	}
	args := []int64{int64(ctx.Instance), int64(ctx.Instances)}
	if vf.Args != nil {
		args = vf.Args(ctx)
	}
	_, err = inst.Call(vf.Entry, args...)
	return err
}
