package bench

import (
	"fmt"
	"time"

	"alloystack/internal/faults"
	"alloystack/internal/visor"
	"alloystack/internal/workloads"
)

// Recovery measures restart-based fault recovery (paper §3.1): each
// workflow runs clean and then under a seeded fault plan that panics
// one function per instance, so the reported delta is the price of
// detecting the fault, backing off and restarting inside a live WFD —
// the intermediate data survives, so recovery is re-execution of the
// failed function only, not the whole workflow.
func Recovery(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:     "recovery",
		Title:  "fault recovery latency (injected panic + retry, §3.1)",
		Header: []string{"workload", "clean", "faulted", "overhead", "retries", "backoff-wait"},
		Notes: []string{
			"fault plan: every instance of the target function panics once (PanicEvery N=2)",
			"retry policy: base 2ms, x2, cap 8ms, 20% jitter, seed 1",
		},
	}

	policy := &faults.RetryPolicy{
		MaxRetries: 3,
		BaseDelay:  2 * time.Millisecond,
		MaxDelay:   8 * time.Millisecond,
		Multiplier: 2,
		Jitter:     0.2,
		MaxElapsed: time.Minute,
		Seed:       1,
	}

	run := func(target string, build func() (visor.RunOptions, error),
		wfName string) (clean, faulted *visor.RunResult, err error) {
		v := newAlloyVisor()
		workflow := workloads.FunctionChain(5, o.size(1<<20), "native")
		if wfName == "word-count" {
			workflow = workloads.WordCount(3, "native")
		}
		build2 := func(plan *faults.Plan) (visor.RunOptions, error) {
			ro, err := build()
			if err != nil {
				return ro, err
			}
			ro.Retry = policy
			ro.Faults = plan
			return ro, nil
		}
		clean, err = runAlloy(o, v, workflow, func() (visor.RunOptions, error) {
			return build2(nil)
		})
		if err != nil {
			return nil, nil, fmt.Errorf("clean %s: %w", wfName, err)
		}
		faulted, err = runAlloy(o, v, workflow, func() (visor.RunOptions, error) {
			return build2(faults.NewPlan(1, faults.PanicEvery{Func: target, N: 2}))
		})
		if err != nil {
			return nil, nil, fmt.Errorf("faulted %s: %w", wfName, err)
		}
		return clean, faulted, nil
	}

	scenarios := []struct {
		wfName string
		target string
		build  func() (visor.RunOptions, error)
	}{
		{"function-chain", "chain-2", func() (visor.RunOptions, error) {
			return alloyOpts(o, nil), nil
		}},
		{"word-count", "wc-map", func() (visor.RunOptions, error) {
			ro := alloyOpts(o, nil)
			img, err := workloads.BuildTextImage(o.size(16<<20), false)
			if err != nil {
				return ro, err
			}
			ro.DiskImage = img
			return ro, nil
		}},
	}
	for _, sc := range scenarios {
		clean, faulted, err := run(sc.target, sc.build, sc.wfName)
		if err != nil {
			return nil, err
		}
		overhead := faulted.E2E - clean.E2E
		r.Rows = append(r.Rows, []string{
			sc.wfName + "/" + sc.target,
			ms(clean.E2E),
			ms(faulted.E2E),
			ms(overhead),
			fmt.Sprint(faulted.Retries),
			ms(faulted.RetryWait),
		})
	}
	return emit(o, r), nil
}
