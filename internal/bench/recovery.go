package bench

import (
	"fmt"
	"sort"
	"time"

	"alloystack/internal/faults"
	"alloystack/internal/visor"
	"alloystack/internal/workloads"
)

// recoveryRuns is the per-arm sample count; the median run is reported.
const recoveryRuns = 3

// Recovery measures restart-based fault recovery (paper §3.1): each
// workflow runs clean and then under a seeded fault plan that panics
// one function per instance, so the reported delta is the price of
// detecting the fault, backing off and restarting inside a live WFD —
// the intermediate data survives, so recovery is re-execution of the
// failed function only, not the whole workflow.
func Recovery(o Options) (*Result, error) {
	o = o.withDefaults()
	r := o.newResult("recovery", "fault recovery latency (injected panic + retry, §3.1)")
	r.Header = []string{"workload", "clean", "faulted", "overhead", "retries", "backoff-wait"}
	r.Notes = []string{
		"fault plan: every instance of the target function panics once (PanicEvery N=2)",
		"retry policy: base 2ms, x2, cap 8ms, 20% jitter, seed 1",
	}

	policy := &faults.RetryPolicy{
		MaxRetries: 3,
		BaseDelay:  2 * time.Millisecond,
		MaxDelay:   8 * time.Millisecond,
		Multiplier: 2,
		Jitter:     0.2,
		MaxElapsed: time.Minute,
		Seed:       1,
	}

	run := func(target string, build func() (visor.RunOptions, error),
		wfName string) (clean, faulted *visor.RunResult, err error) {
		v := newAlloyVisor()
		workflow := workloads.FunctionChain(5, o.size(1<<20), "native")
		if wfName == "word-count" {
			workflow = workloads.WordCount(3, "native")
		}
		build2 := func(plan *faults.Plan) (visor.RunOptions, error) {
			ro, err := build()
			if err != nil {
				return ro, err
			}
			ro.Retry = policy
			ro.Faults = plan
			return ro, nil
		}
		// A single run's E2E is one scheduler quantum away from 2x noise
		// on a busy machine; each arm reports its median-E2E run of
		// three so the recorded metrics are stable enough to gate on.
		medianRun := func(build func() (visor.RunOptions, error)) (*visor.RunResult, error) {
			results := make([]*visor.RunResult, 0, recoveryRuns)
			for i := 0; i < recoveryRuns; i++ {
				res, err := runAlloy(o, v, workflow, build)
				if err != nil {
					return nil, err
				}
				results = append(results, res)
			}
			sort.Slice(results, func(i, j int) bool { return results[i].E2E < results[j].E2E })
			return results[len(results)/2], nil
		}
		clean, err = medianRun(func() (visor.RunOptions, error) {
			return build2(nil)
		})
		if err != nil {
			return nil, nil, fmt.Errorf("clean %s: %w", wfName, err)
		}
		faulted, err = medianRun(func() (visor.RunOptions, error) {
			return build2(faults.NewPlan(1, faults.PanicEvery{Func: target, N: 2}))
		})
		if err != nil {
			return nil, nil, fmt.Errorf("faulted %s: %w", wfName, err)
		}
		return clean, faulted, nil
	}

	scenarios := []struct {
		wfName string
		target string
		build  func() (visor.RunOptions, error)
	}{
		{"function-chain", "chain-2", func() (visor.RunOptions, error) {
			return alloyOpts(o, nil), nil
		}},
		{"word-count", "wc-map", func() (visor.RunOptions, error) {
			ro := alloyOpts(o, nil)
			img, err := workloads.BuildTextImage(o.size(16<<20), false)
			if err != nil {
				return ro, err
			}
			ro.DiskImage = img
			return ro, nil
		}},
	}
	for _, sc := range scenarios {
		clean, faulted, err := run(sc.target, sc.build, sc.wfName)
		if err != nil {
			return nil, err
		}
		overhead := faulted.E2E - clean.E2E
		key := metricKey(sc.wfName, sc.target)
		// The gate rides on clean latency and the deterministic fault
		// plan (retry count, seeded backoff); overhead is the difference
		// of two noisy measurements, so it informs but never gates.
		r.Rows = append(r.Rows, []string{
			sc.wfName + "/" + sc.target,
			r.msCell(metricKey("clean_ms", key), LowerIsBetter, clean.E2E),
			r.msCell(metricKey("faulted_ms", key), Informational, faulted.E2E),
			r.msCell(metricKey("overhead_ms", key), Informational, overhead),
			r.countCell(metricKey("retries", key), LowerIsBetter, int64(faulted.Retries)),
			r.msCell(metricKey("backoff_wait_ms", key), LowerIsBetter, faulted.RetryWait),
		})
	}
	return emit(o, r), nil
}
