package bench

import (
	"fmt"
	"strings"
	"time"

	"alloystack/internal/baselines"
	"alloystack/internal/dag"
	"alloystack/internal/metrics"
	"alloystack/internal/visor"
	"alloystack/internal/workloads"
)

// Fig11 measures intermediate-data transfer latency with the pipe
// benchmark across data sizes and systems (paper Figure 11).
func Fig11(o Options) (*Result, error) {
	o = o.withDefaults()
	sizes := []int64{4 << 10, o.size(1 << 20), o.size(4 << 20), o.size(16 << 20)}
	systems := []string{"AS", "AS-IFI", "AS-C", "AS-Py", "Faastlane", "Faastlane-IPC", "Faasm-C", "OpenFaaS"}
	rep := o.newResult("fig11", "intermediate data transfer latency, pipe benchmark (paper Fig 11)")
	rep.Header = append([]string{"Size"}, systems...)
	rep.Notes = []string{
		"values are total transfer-stage time in microseconds (write begins to read completes)",
		"paper @16MB: AS 951us, AS-C 697us, AS-Py 9631us; AS beats Faastlane above 4KB",
		"final row: payload copies per transfer from the data-plane counters —",
		"0 under reference passing, >=2 when an external store mediates the edge",
	}
	v := newAlloyVisor()
	var copiesRow []string
	var lastASTransfer string
	for _, size := range sizes {
		label := humanBytes(size)
		row := []string{label}
		copiesRow = []string{"copies"}
		// AlloyStack native.
		for i, mode := range []struct {
			ifi  bool
			lang string
		}{{false, "native"}, {true, "native"}, {false, "c"}, {false, "python"}} {
			w := workloads.Pipe(size, mode.lang)
			res, err := runAlloy(o, v, w, func() (visor.RunOptions, error) {
				ro := alloyOpts(o, func(r *visor.RunOptions) { r.IFI = mode.ifi })
				if mode.lang == "python" {
					img, err := workloads.BuildEmptyImage(true)
					if err != nil {
						return ro, err
					}
					ro.DiskImage = img
				}
				return ro, nil
			})
			if err != nil {
				return nil, fmt.Errorf("fig11 AS %s size %d: %w", mode.lang, size, err)
			}
			row = append(row, rep.usCell(metricKey("transfer_us", systems[i], label), LowerIsBetter,
				res.Clock.Total(metrics.StageTransfer)))
			copiesRow = append(copiesRow, rep.countCell(metricKey("copies", systems[i], label),
				LowerIsBetter, res.Transfer.Totals().Copies))
			if mode.lang == "native" && !mode.ifi {
				lastASTransfer = res.Transfer.String()
				// Snapshot tracks the largest size only, like the note.
				rep.Snapshot.Transport = nil
				rep.Snapshot.AddTransport(res.Transfer)
			}
		}
		// Baselines.
		for i, bl := range []struct {
			sys  baselines.System
			lang string
		}{
			{baselines.SysFaastlaneRefer, "native"},
			{baselines.SysFaastlaneIPC, "native"},
			{baselines.SysFaasm, "c"},
			{baselines.SysOpenFaaS, "native"},
		} {
			w := workloads.Pipe(size, bl.lang)
			res, err := runBaseline(o, bl.sys, bl.lang, w, nil)
			if err != nil {
				return nil, fmt.Errorf("fig11 %s size %d: %w", bl.sys, size, err)
			}
			row = append(row, rep.usCell(metricKey("transfer_us", systems[4+i], label), LowerIsBetter,
				res.Clock.Total(metrics.StageTransfer)))
			copiesRow = append(copiesRow, rep.countCell(metricKey("copies", systems[4+i], label),
				LowerIsBetter, res.Transfer.Totals().Copies))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Rows = append(rep.Rows, copiesRow)
	if lastASTransfer != "" {
		rep.Notes = append(rep.Notes,
			"AS data plane at largest size: "+strings.ReplaceAll(lastASTransfer, "\n", "; "))
	}
	return emit(o, rep), nil
}

// rustConfig is one (app, input size, parallelism) cell of Figure 12.
type e2eConfig struct {
	app       string // "wc", "ps", "fc"
	paperSize int64
	inst      int // instances per parallel stage, or chain length for fc
}

// fig12Configs pairs sizes with instance counts as the paper's subplots do.
var fig12Configs = []e2eConfig{
	{"wc", 10 << 20, 1}, {"wc", 100 << 20, 3}, {"wc", 300 << 20, 5},
	{"ps", 1 << 20, 1}, {"ps", 25 << 20, 3}, {"ps", 50 << 20, 5},
	{"fc", 1 << 20, 5}, {"fc", 64 << 20, 10}, {"fc", 256 << 20, 15},
}

// buildWorkflow constructs the workflow and its input staging for a config.
func (c e2eConfig) workflow(lang string, size int64) *dag.Workflow {
	switch c.app {
	case "wc":
		return workloads.WordCount(c.inst, lang)
	case "ps":
		return workloads.ParallelSorting(c.inst, lang)
	default:
		return workloads.FunctionChain(c.inst, size, lang)
	}
}

// key is the stable metric-name form of a config cell.
func (c e2eConfig) key(size int64) string {
	return fmt.Sprintf("%s-%s-x%d", c.app, humanBytes(size), c.inst)
}

func (c e2eConfig) label(size int64) string {
	switch c.app {
	case "wc":
		return fmt.Sprintf("WordCount %s x%d", humanBytes(size), c.inst)
	case "ps":
		return fmt.Sprintf("ParallelSorting %s x%d", humanBytes(size), c.inst)
	default:
		return fmt.Sprintf("FunctionChain %s len%d", humanBytes(size), c.inst)
	}
}

// runAlloyConfig executes one Figure 12/13 cell on AlloyStack.
func runAlloyConfig(o Options, v *visor.Visor, c e2eConfig, lang string, size int64,
	mutate func(*visor.RunOptions)) (*visor.RunResult, error) {
	w := c.workflow(lang, size)
	needPy := lang == "python"
	return runAlloy(o, v, w, func() (visor.RunOptions, error) {
		ro := alloyOpts(o, mutate)
		var err error
		switch c.app {
		case "wc":
			ro.DiskImage, err = workloads.BuildTextImage(size, needPy)
		case "ps":
			ro.DiskImage, err = workloads.BuildBinImage(size, needPy)
		default:
			// FunctionChain needs a filesystem only when something will
			// touch it: the Python runtime image, file-mediated transfer,
			// or eager load-all (which instantiates fatfs regardless).
			if needPy || !ro.RefPassing || !ro.OnDemand {
				ro.DiskImage, err = workloads.BuildEmptyImage(needPy)
			}
		}
		return ro, err
	})
}

// baselineInputs stages the host files a config needs.
func (c e2eConfig) inputs(size int64) map[string][]byte {
	switch c.app {
	case "wc":
		return map[string][]byte{workloads.TextInputPath: workloads.GenText(size, 42)}
	case "ps":
		return map[string][]byte{workloads.BinInputPath: workloads.GenU64s(size, 42)}
	}
	return nil
}

// Fig12 is the Rust-tier end-to-end comparison (paper Figure 12).
func Fig12(o Options) (*Result, error) {
	o = o.withDefaults()
	systems := []baselines.System{
		baselines.SysOpenFaaS, baselines.SysOpenFaaSGVisor,
		baselines.SysFaastlane, baselines.SysFaastlaneRefer,
		baselines.SysFaastlaneReferKata,
	}
	header := []string{"Configuration", "AS (ms)"}
	for _, s := range systems {
		header = append(header, string(s)+" (ms)")
	}
	rep := o.newResult("fig12", "Rust-tier end-to-end latency (paper Fig 12)")
	rep.Header = header
	rep.Notes = []string{
		fmt.Sprintf("data sizes scaled by %.4f vs the paper", o.Scale),
		"paper: AS 2.1-3.29x vs Faastlane and 6.5-29.3x vs OpenFaaS(-gVisor) on PS;",
		"4.08-10.15x vs OpenFaaS on FC; Faastlane slightly ahead on WC (rust-fatfs reads)",
	}
	v := newAlloyVisor()
	for _, c := range fig12Configs {
		size := o.size(c.paperSize)
		row := []string{c.label(size)}
		asRes, err := runAlloyConfig(o, v, c, "native", size, nil)
		if err != nil {
			return nil, fmt.Errorf("fig12 AS %s: %w", c.label(size), err)
		}
		row = append(row, rep.msCell(metricKey("e2e_ms", c.key(size), "AS"), LowerIsBetter, asRes.E2E))
		for _, sys := range systems {
			res, err := runBaseline(o, sys, "native", c.workflow("native", size), c.inputs(size))
			if err != nil {
				return nil, fmt.Errorf("fig12 %s %s: %w", sys, c.label(size), err)
			}
			row = append(row, rep.msCell(metricKey("e2e_ms", c.key(size), string(sys)), Informational, res.E2E))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return emit(o, rep), nil
}

// Fig13 is the C and Python tier comparison against Faasm (paper Fig 13).
func Fig13(o Options) (*Result, error) {
	o = o.withDefaults()
	rep := o.newResult("fig13", "C and Python end-to-end latency vs Faasm (paper Fig 13)")
	rep.Header = []string{"Configuration", "AS-C (ms)", "Faasm-C (ms)", "AS-Py (ms)", "Faasm-Py (ms)"}
	rep.Notes = []string{
		"python-tier sizes are scaled down a further 8x (interpreted bytecode)",
		"paper: AS-C 1.02-2.77x on WC, 3.01-12.41x on FC; slightly slower on PS",
		"(Wasmtime 30% < WAVM); AS-Py up to 78.3x on FC",
	}
	v := newAlloyVisor()
	for _, c := range fig12Configs {
		cSize := o.size(c.paperSize)
		pySize := o.size(c.paperSize / 8)
		row := []string{c.label(cSize)}
		for _, tier := range []struct {
			lang string
			size int64
		}{{"c", cSize}, {"python", pySize}} {
			asRes, err := runAlloyConfig(o, v, c, tier.lang, tier.size, nil)
			if err != nil {
				return nil, fmt.Errorf("fig13 AS-%s %s: %w", tier.lang, c.label(tier.size), err)
			}
			faasmRes, err := runBaseline(o, baselines.SysFaasm, tier.lang,
				c.workflow(tier.lang, tier.size), c.inputs(tier.size))
			if err != nil {
				return nil, fmt.Errorf("fig13 Faasm-%s %s: %w", tier.lang, c.label(tier.size), err)
			}
			key := c.key(tier.size)
			row = append(row,
				rep.msCell(metricKey("e2e_ms", key, "AS-"+tier.lang), LowerIsBetter, asRes.E2E),
				rep.msCell(metricKey("e2e_ms", key, "Faasm-"+tier.lang), Informational, faasmRes.E2E))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return emit(o, rep), nil
}

// Fig14 is the technique ablation: on-demand loading and reference
// passing enabled independently (paper Figure 14).
func Fig14(o Options) (*Result, error) {
	o = o.withDefaults()
	configs := []e2eConfig{
		{"wc", 10 << 20, 5},
		{"ps", 1 << 20, 5},
		{"fc", 1 << 20, 15},
	}
	arms := []struct {
		name     string
		onDemand bool
		refPass  bool
	}{
		{"base", false, false},
		{"+on-demand", true, false},
		{"+ref-passing", false, true},
		{"+both", true, true},
	}
	rep := o.newResult("fig14", "contribution of on-demand loading and reference passing (paper Fig 14)")
	rep.Header = []string{"Workload", "base (ms)", "+on-demand (ms)", "+ref-passing (ms)", "+both (ms)", "on-demand save", "ref-pass save", "copies base", "copies +both"}
	rep.Notes = []string{
		"paper: on-demand loading cuts 40.2-48.0% of latency; reference passing 34.7-51.0%",
		"disabled reference passing routes intermediate data through fatfs files",
		"copies columns: total payload copies counted by the data plane (file spill vs refpass)",
	}
	v := newAlloyVisor()
	for _, c := range configs {
		size := o.size(c.paperSize)
		key := c.key(size)
		row := []string{c.label(size)}
		times := make([]time.Duration, len(arms))
		copies := make([]int64, len(arms))
		for i, arm := range arms {
			res, err := runAlloyConfig(o, v, c, "native", size, func(r *visor.RunOptions) {
				r.OnDemand = arm.onDemand
				r.RefPassing = arm.refPass
				if !arm.onDemand {
					// load-all needs the full resource grant.
					r.Hub = freshHub()
					r.IP = nextBenchIP()
				}
			})
			if err != nil {
				return nil, fmt.Errorf("fig14 %s %s: %w", arm.name, c.label(size), err)
			}
			times[i] = res.E2E
			copies[i] = res.Transfer.Totals().Copies
			row = append(row, rep.msCell(metricKey("e2e_ms", key, arm.name), LowerIsBetter, res.E2E))
		}
		odSave := 1 - float64(times[1])/float64(times[0])
		rpSave := 1 - float64(times[2])/float64(times[0])
		rep.gauge(metricKey("save_pct", key, "on-demand"), "%", HigherIsBetter, odSave*100)
		rep.gauge(metricKey("save_pct", key, "ref-passing"), "%", HigherIsBetter, rpSave*100)
		row = append(row, fmt.Sprintf("%.1f%%", odSave*100), fmt.Sprintf("%.1f%%", rpSave*100),
			rep.countCell(metricKey("copies", key, "base"), Informational, copies[0]),
			rep.countCell(metricKey("copies", key, "both"), LowerIsBetter, copies[len(arms)-1]))
		rep.Rows = append(rep.Rows, row)
	}
	return emit(o, rep), nil
}

// Fig15 is the per-stage latency breakdown (paper Figure 15).
func Fig15(o Options) (*Result, error) {
	o = o.withDefaults()
	configs := []e2eConfig{
		{"wc", 100 << 20, 3},
		{"ps", 25 << 20, 3},
		{"fc", 64 << 20, 10},
	}
	rep := o.newResult("fig15", "end-to-end latency breakdown (paper Fig 15)")
	rep.Header = []string{"Workload", "System", "read-input (ms)", "compute (ms)", "transfer (ms)", "fan-in wait (ms)"}
	rep.Notes = []string{
		"paper: AS read-input 6.9-8.1x slower than Faastlane (rust-fatfs vs ext4);",
		"AS transfer and FC stages negligible under reference passing",
	}
	v := newAlloyVisor()
	for _, c := range configs {
		size := o.size(c.paperSize)
		key := c.key(size)
		asRes, err := runAlloyConfig(o, v, c, "native", size, nil)
		if err != nil {
			return nil, fmt.Errorf("fig15 AS %s: %w", c.label(size), err)
		}
		rep.Rows = append(rep.Rows, breakdownRow(rep, key, c.label(size), "AlloyStack", LowerIsBetter, asRes.Clock))
		flRes, err := runBaseline(o, baselines.SysFaastlaneRefer, "native",
			c.workflow("native", size), c.inputs(size))
		if err != nil {
			return nil, fmt.Errorf("fig15 Faastlane %s: %w", c.label(size), err)
		}
		rep.Rows = append(rep.Rows, breakdownRow(rep, key, "", "Faastlane-refer", Informational, flRes.Clock))
		fmRes, err := runBaseline(o, baselines.SysFaasm, "c",
			c.workflow("c", size), c.inputs(size))
		if err != nil {
			return nil, fmt.Errorf("fig15 Faasm %s: %w", c.label(size), err)
		}
		rep.Rows = append(rep.Rows, breakdownRow(rep, key, "", "Faasm-C", Informational, fmRes.Clock))
	}
	return emit(o, rep), nil
}

// breakdownRow renders one system's stage breakdown, recording each
// stage total as a typed metric along the way.
func breakdownRow(rep *Result, key, label, system string, dir Direction, clock *metrics.StageClock) []string {
	cell := func(stage metrics.Stage) string {
		return rep.msCell(metricKey(stage.String()+"_ms", key, system), dir, clock.Total(stage))
	}
	return []string{
		label, system,
		cell(metrics.StageReadInput),
		cell(metrics.StageCompute),
		cell(metrics.StageTransfer),
		cell(metrics.StageWait),
	}
}

// Fig16 removes the filesystem difference by running on ramfs
// (paper Figure 16): ParallelSorting 25MB, 1/3/5 instances.
func Fig16(o Options) (*Result, error) {
	o = o.withDefaults()
	size := o.size(25 << 20)
	rep := o.newResult("fig16", "end-to-end latency on ramfs (paper Fig 16)")
	rep.Header = []string{"Instances", "AS-ramfs (ms)", "Faastlane-refer-kata (ms)"}
	rep.Notes = []string{
		"paper: with filesystem differences removed AlloyStack still leads slightly",
		"(hardware virtualisation reduces the MicroVM's computation efficiency)",
	}
	v := newAlloyVisor()
	for _, inst := range []int{1, 3, 5} {
		w := workloads.ParallelSorting(inst, "native")
		asRes, err := runAlloy(o, v, w, func() (visor.RunOptions, error) {
			ro := alloyOpts(o, func(r *visor.RunOptions) {
				r.UseRamfs = true
				r.Ramfs = workloads.BuildBinRamfs(size, false)
			})
			return ro, nil
		})
		if err != nil {
			return nil, fmt.Errorf("fig16 AS x%d: %w", inst, err)
		}
		// Warm sandbox: the paper's Figure 16 isolates steady-state
		// computation efficiency, so the MicroVM boot is excluded.
		kr, err := baselines.NewRunner(baselines.Config{
			System:      baselines.SysFaastlaneReferKata,
			Costs:       baselines.DefaultCosts(),
			CostScale:   o.CostScale,
			WarmSandbox: true,
			Inputs:      map[string][]byte{workloads.BinInputPath: workloads.GenU64s(size, 42)},
		})
		if err != nil {
			return nil, err
		}
		klRes, err := kr.RunWorkflow(w)
		kr.Close()
		if err != nil {
			return nil, fmt.Errorf("fig16 kata x%d: %w", inst, err)
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(inst),
			rep.msCell(fmt.Sprintf("e2e_ms/x%d/AS-ramfs", inst), LowerIsBetter, asRes.E2E),
			rep.msCell(fmt.Sprintf("e2e_ms/x%d/kata", inst), Informational, klRes.E2E),
		})
	}
	return emit(o, rep), nil
}
