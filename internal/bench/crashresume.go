package bench

import (
	"fmt"
	"os"
	"time"

	"alloystack/internal/faults"
	"alloystack/internal/journal"
	"alloystack/internal/metrics"
	"alloystack/internal/visor"
	"alloystack/internal/workloads"
)

// crashresumeRuns is the per-arm sample count: enough for a stable p50
// and a coarse p99 without making the suite crawl — each iteration runs
// the ~1 s workflow four times (plain, durable, crash, resume).
const crashresumeRuns = 7

// CrashResume quantifies what the durability journal buys and what it
// costs. Three arms over the interpreter-tier function chain (5 Python
// functions, the paper's Fig-13 configuration) — the representative
// serverless case, where per-function compute dominates and barrier
// payloads are small relative to it:
//
//	plain    — no journal: what a lost run costs to re-run from scratch
//	           (the only recovery a journal-less deployment has)
//	durable  — journal on, no crash: the group-committed write-ahead
//	           overhead a healthy run pays (target: < 5% over plain)
//	resume   — crash after the second stage's barrier commit, then
//	           resume from the journal: committed stages are skipped and
//	           their spilled outputs re-imported
//
// The crash uses the seeded soft crashpoint (no CrashFn installed), so
// the journal is left exactly as a killed process would leave it:
// unsealed, committed prefix 2 of 5.
func CrashResume(o Options) (*Result, error) {
	o = o.withDefaults()
	size := o.size(16 << 20)
	w := workloads.FunctionChain(5, size, "python")
	v := newAlloyVisor()

	dir := o.ArtifactsDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "asbench-journal-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	store, err := journal.Open(dir, journal.Options{})
	if err != nil {
		return nil, err
	}

	var plain, durable, resume []time.Duration
	skipped, replayed := 0, 0

	// Input images are single-use (runs consume them), so every
	// invocation builds a fresh one outside the timed window.
	buildOpts := func(mutate func(*visor.RunOptions)) (visor.RunOptions, error) {
		ro := alloyOpts(o, mutate)
		img, err := workloads.BuildEmptyImage(true)
		if err != nil {
			return ro, err
		}
		ro.DiskImage = img
		return ro, nil
	}

	for i := 0; i < crashresumeRuns; i++ {
		// Arm 1: plain run — also the cold re-run cost after a crash.
		ro, err := buildOpts(nil)
		if err != nil {
			return nil, err
		}
		start := o.now()
		if _, err := v.RunWorkflow(w, ro); err != nil {
			return nil, fmt.Errorf("plain run %d: %w", i, err)
		}
		plain = append(plain, o.since(start))

		// Arm 2: durable run, no crash.
		ro, err = buildOpts(func(r *visor.RunOptions) {
			r.Durable = true
			r.Journal = store
		})
		if err != nil {
			return nil, err
		}
		start = o.now()
		if _, err := v.RunWorkflow(w, ro); err != nil {
			return nil, fmt.Errorf("durable run %d: %w", i, err)
		}
		durable = append(durable, o.since(start))

		// Arm 3: crash after the second barrier's commit (not timed),
		// then resume.
		co, err := buildOpts(func(r *visor.RunOptions) {
			r.Durable = true
			r.Journal = store
			r.Faults = faults.NewPlan(int64(i+1), faults.Crash{Point: "after-commit:1"})
		})
		if err != nil {
			return nil, err
		}
		cres, cerr := v.RunWorkflow(w, co)
		if cerr == nil || cres == nil || cres.RunID == "" {
			return nil, fmt.Errorf("crash run %d: expected crashpoint, got res=%v err=%v", i, cres, cerr)
		}
		rro, err := buildOpts(func(r *visor.RunOptions) {
			r.Durable = true
			r.Journal = store
			r.Resume = cres.RunID
		})
		if err != nil {
			return nil, err
		}
		start = o.now()
		rres, rerr := v.RunWorkflow(w, rro)
		if rerr != nil {
			return nil, fmt.Errorf("resume run %d: %w", i, rerr)
		}
		resume = append(resume, o.since(start))
		skipped = rres.StagesSkipped
		replayed = len(rres.Stages) - rres.StagesSkipped
	}

	overhead := 100 * (float64(percentile(durable, 50)) - float64(percentile(plain, 50))) /
		float64(percentile(plain, 50))

	r := o.newResult("crashresume", "durable-run journal: crash-resume vs cold re-run (python chain x5)")
	r.Header = []string{"arm", "p50 (ms)", "p99 (ms)", "stages run"}
	r.Rows = [][]string{
		{"plain (cold re-run)",
			r.msCell("p50_ms/plain", LowerIsBetter, percentile(plain, 50), plain...),
			r.msCell("p99_ms/plain", LowerIsBetter, percentile(plain, 99)), "5"},
		{"durable (no crash)",
			r.msCell("p50_ms/durable", LowerIsBetter, percentile(durable, 50), durable...),
			r.msCell("p99_ms/durable", LowerIsBetter, percentile(durable, 99)), "5"},
		{"resume after crash",
			r.msCell("p50_ms/resume", LowerIsBetter, percentile(resume, 50), resume...),
			r.msCell("p99_ms/resume", LowerIsBetter, percentile(resume, 99)),
			fmt.Sprintf("%d (%d skipped)", replayed, skipped)},
	}
	st := store.Stats()
	r.Snapshot.AddLatency("plain", metrics.Summarize(plain))
	r.Snapshot.AddLatency("durable", metrics.Summarize(durable))
	r.Snapshot.AddLatency("resume", metrics.Summarize(resume))
	r.Snapshot.AddCounter("journal_appends", st.Appends)
	r.Snapshot.AddCounter("journal_bytes", st.Bytes)
	r.Snapshot.AddCounter("journal_resumes", st.Resumes)
	r.Snapshot.AddCounter("stages_skipped", int64(skipped))
	r.gauge("durable_overhead_pct", "%", LowerIsBetter, overhead)
	r.gauge("resume_speedup", "x", HigherIsBetter,
		ratio(percentile(plain, 50), percentile(resume, 50)))
	r.Notes = append(r.Notes,
		fmt.Sprintf("%d runs per arm; crash point after-commit:1 → committed prefix 2 of 5", crashresumeRuns),
		fmt.Sprintf("journal: %d appends, %d bytes, %d resumes (group-commit fsync, async barriers)",
			st.Appends, st.Bytes, st.Resumes),
		fmt.Sprintf("durable overhead p50: %+.1f%% (target < 5%%); resume speedup p50: %.1fx vs cold re-run",
			overhead, ratio(percentile(plain, 50), percentile(resume, 50))))
	if o.ArtifactsDir != "" {
		r.Notes = append(r.Notes, fmt.Sprintf("journal artifacts kept in %s", dir))
	}
	return emit(o, r), nil
}
