package bench

import (
	"fmt"
	"sync"
	"time"

	"alloystack/internal/baselines"
	"alloystack/internal/metrics"
	"alloystack/internal/visor"
	"alloystack/internal/workloads"
)

// Fig17a measures P99 latency under increasing offered load (paper
// Appendix Figure 17a): ParallelSorting (25 MB scaled, 3 instances) on
// AlloyStack vs Faastlane-refer-kata, closed-loop with K concurrent
// clients per level.
func Fig17a(o Options) (*Result, error) {
	o = o.withDefaults()
	size := o.size(25 << 20)
	// Concurrency levels stand in for the paper's QPS sweep; each level
	// runs enough invocations for a stable P99-ish tail estimate.
	levels := []int{1, 2, 4, 8}
	perLevel := 3 * o.Iterations

	rep := o.newResult("fig17a", "tail latency under load (paper Fig 17a)")
	rep.Header = []string{"Concurrency", "AS P50 (ms)", "AS P99 (ms)", "Kata P50 (ms)", "Kata P99 (ms)"}
	rep.Notes = []string{
		"paper: Faastlane-refer-kata P99 grows sharply with QPS (rootfs and cgroup",
		"bottlenecks); AlloyStack degrades only at CPU saturation",
	}

	v := newAlloyVisor()
	for _, level := range levels {
		asSum, err := loadSweepAS(o, v, size, level, perLevel)
		if err != nil {
			return nil, fmt.Errorf("fig17a AS level %d: %w", level, err)
		}
		kataSum, err := loadSweepBaseline(o, size, level, perLevel)
		if err != nil {
			return nil, fmt.Errorf("fig17a kata level %d: %w", level, err)
		}
		rep.Snapshot.AddLatency(fmt.Sprintf("as_c%d", level), asSum)
		rep.Snapshot.AddLatency(fmt.Sprintf("kata_c%d", level), kataSum)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(level),
			rep.msCell(fmt.Sprintf("p50_ms/c%d/AS", level), LowerIsBetter, asSum.P50),
			rep.msCell(fmt.Sprintf("p99_ms/c%d/AS", level), LowerIsBetter, asSum.P99),
			rep.msCell(fmt.Sprintf("p50_ms/c%d/kata", level), Informational, kataSum.P50),
			rep.msCell(fmt.Sprintf("p99_ms/c%d/kata", level), Informational, kataSum.P99),
		})
	}
	return emit(o, rep), nil
}

func loadSweepAS(o Options, v *visor.Visor, size int64, concurrency, total int) (metrics.Summary, error) {
	// Exact percentiles over every run: size the ring to the sweep so the
	// retention cap never drops samples.
	rec := metrics.NewRecorderCap(total)
	w := workloads.ParallelSorting(3, "native")
	var wg sync.WaitGroup
	errCh := make(chan error, concurrency)
	work := make(chan struct{}, total)
	for i := 0; i < total; i++ {
		work <- struct{}{}
	}
	close(work)
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				ro := alloyOpts(o, func(r *visor.RunOptions) {
					r.UseRamfs = true
					r.Ramfs = workloads.BuildBinRamfs(size, false)
				})
				start := o.now()
				if _, err := v.RunWorkflow(w, ro); err != nil {
					errCh <- err
					return
				}
				rec.Record(o.since(start))
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return metrics.Summary{}, err
	}
	return rec.Summarize(), nil
}

func loadSweepBaseline(o Options, size int64, concurrency, total int) (metrics.Summary, error) {
	rec := metrics.NewRecorderCap(total)
	w := workloads.ParallelSorting(3, "native")
	inputs := map[string][]byte{workloads.BinInputPath: workloads.GenU64s(size, 42)}
	costs := baselines.DefaultCosts()

	var wg sync.WaitGroup
	errCh := make(chan error, concurrency)
	work := make(chan struct{}, total)
	for i := 0; i < total; i++ {
		work <- struct{}{}
	}
	close(work)
	var contendMu sync.Mutex
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				r, err := baselines.NewRunner(baselines.Config{
					System:    baselines.SysFaastlaneReferKata,
					Costs:     costs,
					CostScale: o.CostScale,
					Inputs:    inputs,
				})
				if err != nil {
					errCh <- err
					return
				}
				start := o.now()
				_, err = r.RunWorkflow(w)
				r.Close()
				if err != nil {
					errCh <- err
					return
				}
				// Rootfs storage and host-kernel cgroup contention
				// serialise sandbox setup under concurrency (paper
				// citing RunD); model as a serialised critical section
				// proportional to concurrency.
				if concurrency > 1 {
					contendMu.Lock()
					d := time.Duration(float64(concurrency) * 10 * float64(time.Millisecond) * o.CostScale)
					time.Sleep(d)
					contendMu.Unlock()
				}
				rec.Record(o.since(start))
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return metrics.Summary{}, err
	}
	return rec.Summarize(), nil
}

// Fig17b reports CPU and memory usage as workflow instances scale
// (paper Appendix Figure 17b), ParallelSorting 25 MB scaled, 5 instances
// per stage.
func Fig17b(o Options) (*Result, error) {
	o = o.withDefaults()
	size := o.size(25 << 20)
	counts := []int{1, 2, 4, 8}
	rep := o.newResult("fig17b", "CPU and memory usage vs workflow instances (paper Fig 17b)")
	rep.Header = []string{"Workflows", "AS CPU (ms)", "AS mem", "Kata CPU (ms)", "Kata mem"}
	rep.Notes = []string{
		"paper: AlloyStack reduces CPU 2.4x and memory 3.2x vs Faastlane-refer-kata;",
		"the MicroVM rows add the guest kernel's fixed footprint per workflow",
		"(128 MiB resident guest kernel + page tables [est]) and its boot CPU time",
	}
	costs := baselines.DefaultCosts()
	const guestKernelFootprint = int64(128 << 20)

	v := newAlloyVisor()
	w := workloads.ParallelSorting(5, "native")
	for _, n := range counts {
		// AlloyStack: run n concurrent workflows, sum measured usage.
		var wg sync.WaitGroup
		var mu sync.Mutex
		var asCPU time.Duration
		var asMem int64
		errCh := make(chan error, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ro := alloyOpts(o, func(r *visor.RunOptions) {
					r.UseRamfs = true
					r.Ramfs = workloads.BuildBinRamfs(size, false)
				})
				res, err := v.RunWorkflow(w, ro)
				if err != nil {
					errCh <- err
					return
				}
				mu.Lock()
				// CPU: the stage-clock sum approximates on-CPU time.
				asCPU += res.Clock.Total(metrics.StageReadInput) +
					res.Clock.Total(metrics.StageCompute) +
					res.Clock.Total(metrics.StageTransfer)
				asMem += int64(res.MemPeak)
				mu.Unlock()
			}()
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			return nil, fmt.Errorf("fig17b AS n=%d: %w", n, err)
		}

		// Faastlane-refer-kata: measured platform work plus the modelled
		// guest-kernel footprint and boot CPU per workflow.
		r, err := baselines.NewRunner(baselines.Config{
			System:    baselines.SysFaastlaneReferKata,
			Costs:     costs,
			CostScale: o.CostScale,
			Inputs:    map[string][]byte{workloads.BinInputPath: workloads.GenU64s(size, 42)},
		})
		if err != nil {
			return nil, err
		}
		var kataCPU time.Duration
		var kataMem int64
		for i := 0; i < n; i++ {
			res, err := r.RunWorkflow(w)
			if err != nil {
				r.Close()
				return nil, fmt.Errorf("fig17b kata n=%d: %w", n, err)
			}
			kataCPU += res.Clock.Total(metrics.StageReadInput) +
				res.Clock.Total(metrics.StageCompute) +
				res.Clock.Total(metrics.StageTransfer) +
				scaledDur(costs.MicroVMBoot, o.CostScale) // boot burns CPU
			kataMem += guestKernelFootprint + size*2
		}
		r.Close()

		rep.gauge(fmt.Sprintf("mem_bytes/n%d/AS", n), "bytes", LowerIsBetter, float64(asMem))
		rep.gauge(fmt.Sprintf("mem_bytes/n%d/kata", n), "bytes", Informational, float64(kataMem))
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(n),
			rep.msCell(fmt.Sprintf("cpu_ms/n%d/AS", n), LowerIsBetter, asCPU),
			metrics.FormatBytes(asMem),
			rep.msCell(fmt.Sprintf("cpu_ms/n%d/kata", n), Informational, kataCPU),
			metrics.FormatBytes(kataMem),
		})
	}
	return emit(o, rep), nil
}

func scaledDur(d time.Duration, scale float64) time.Duration {
	if scale <= 0 {
		return 0
	}
	return time.Duration(float64(d) * scale)
}
