// Package bench is the experiment harness: one function per table and
// figure of the paper's evaluation (§8), each regenerating the same rows
// or series the paper reports. cmd/asbench drives it from the command
// line; bench_test.go drives it from `go test -bench`.
//
// Scaling: the paper's testbed is a 64-core Xeon with inputs up to
// 300 MB. Options.Scale (default 1/16) scales every data size so the
// suite completes on a laptop; Options.CostScale scales the injected
// platform costs (Firecracker boots, module relocation latencies) —
// 1.0 reproduces the calibrated values, smaller values speed up smoke
// runs without changing who wins. EXPERIMENTS.md records the scale used.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"alloystack/internal/baselines"
	"alloystack/internal/blockdev"
	"alloystack/internal/core"
	"alloystack/internal/dag"
	"alloystack/internal/netstack"
	"alloystack/internal/visor"
	"alloystack/internal/workloads"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies the paper's data sizes (default 1/16).
	Scale float64
	// CostScale multiplies injected platform costs (default 1.0).
	CostScale float64
	// Iterations per configuration (default 1; medians reported if >1).
	Iterations int
	// Out receives the rendered report (default io.Discard).
	Out io.Writer
	// ArtifactsDir, when set, keeps on-disk experiment byproducts
	// (e.g. the crashresume journal) there instead of a temp dir, so
	// CI can upload them.
	ArtifactsDir string
	// Clock supplies the time source every measurement loop reads.
	// Injected so asvet's wallclock analyzer can prove the package has
	// exactly one wall-clock site (wallNow, the default).
	Clock func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1.0 / 16
	}
	if o.CostScale == 0 {
		o.CostScale = 1.0
	}
	if o.Iterations == 0 {
		o.Iterations = 1
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	if o.Clock == nil {
		o.Clock = wallNow
	}
	return o
}

// now reads the injected clock.
func (o Options) now() time.Time { return o.Clock() }

// since measures elapsed time on the injected clock.
func (o Options) since(start time.Time) time.Duration { return o.Clock().Sub(start) }

// size scales a paper-stated byte count, keeping it 8-byte aligned and
// at least 4 KiB so every workload stays meaningful.
func (o Options) size(paperBytes int64) int64 {
	s := int64(float64(paperBytes) * o.Scale)
	if s < 4096 {
		s = 4096
	}
	return s &^ 7
}

// Report is the aligned-text-table view of an experiment result.
// Experiments build a typed *Result; Report carries only presentation
// and is assembled by Result.Report().
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			// A row can be wider than the header; cells beyond the last
			// header column get no padding instead of an index panic.
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w, c)
		}
		b.WriteString("\n")
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// emit renders the result's table view to the options' writer and
// returns the typed result.
func emit(o Options, r *Result) *Result {
	fmt.Fprintln(o.Out, r.Report().String())
	return r
}

// ms renders a duration in milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond))
}

// us renders a duration in microseconds.
func us(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Microsecond))
}

// median returns the median of samples (destructive sort).
func median(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2]
}

// humanBytes renders a byte count the way the paper labels its axes.
func humanBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}

// ---- shared execution helpers --------------------------------------------

// newAlloyVisor builds a visor with the full workload registry.
func newAlloyVisor() *visor.Visor {
	reg := visor.NewRegistry()
	workloads.RegisterAll(reg)
	return visor.New(reg)
}

// alloyOpts builds AlloyStack run options for an experiment.
func alloyOpts(o Options, mutate func(*visor.RunOptions)) visor.RunOptions {
	ro := visor.DefaultRunOptions()
	ro.CostScale = o.CostScale
	ro.BufHeapSize = 2 << 30
	if mutate != nil {
		mutate(&ro)
	}
	return ro
}

// runAlloy executes one AlloyStack invocation, taking the median of
// o.Iterations runs. build prepares fresh per-run options (disk images
// are single-use because runs truncate/consume them).
func runAlloy(o Options, v *visor.Visor, w *dag.Workflow, build func() (visor.RunOptions, error)) (*visor.RunResult, error) {
	var best *visor.RunResult
	samples := make([]time.Duration, 0, o.Iterations)
	for i := 0; i < o.Iterations; i++ {
		ro, err := build()
		if err != nil {
			return nil, err
		}
		res, err := v.RunWorkflow(w, ro)
		if err != nil {
			return nil, err
		}
		samples = append(samples, res.E2E)
		if best == nil || res.E2E < best.E2E {
			best = res
		}
	}
	best.E2E = median(samples)
	return best, nil
}

// runBaseline executes one baseline invocation (median of iterations).
func runBaseline(o Options, sys baselines.System, lang string, w *dag.Workflow,
	inputs map[string][]byte) (*baselines.Result, error) {
	r, err := baselines.NewRunner(baselines.Config{
		System:    sys,
		Costs:     baselines.DefaultCosts(),
		CostScale: o.CostScale,
		Language:  lang,
		Inputs:    inputs,
	})
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var best *baselines.Result
	samples := make([]time.Duration, 0, o.Iterations)
	for i := 0; i < o.Iterations; i++ {
		res, err := r.RunWorkflow(w)
		if err != nil {
			return nil, err
		}
		samples = append(samples, res.E2E)
		if best == nil || res.E2E < best.E2E {
			best = res
		}
	}
	best.E2E = median(samples)
	return best, nil
}

// freshHub and nextBenchIP hand experiments unique virtual-network
// resources for WFDs that must load the socket module.
func freshHub() *netstack.Hub { return netstack.NewHub() }

var benchIPCounter uint32

func nextBenchIP() netstack.Addr {
	benchIPMu.Lock()
	defer benchIPMu.Unlock()
	benchIPCounter++
	return netstack.IP(10, 200, byte(benchIPCounter>>8), byte(benchIPCounter))
}

var benchIPMu sync.Mutex

// newWFD instantiates a bare WFD for tracing-style experiments.
func newWFD(o Options, ip netstack.Addr, hub *netstack.Hub) (*core.WFD, error) {
	return core.Instantiate(core.Options{
		OnDemand:    true,
		CostScale:   0,
		BufHeapSize: 64 << 20,
		DiskImage:   blockdev.NewMemDisk(8 << 20),
		Hub:         hub,
		IP:          ip,
	})
}
