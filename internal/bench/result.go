package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"alloystack/internal/metrics"
)

// Direction says which way a metric may drift before the comparator
// calls it a regression: latency up is bad, throughput down is bad, and
// informational metrics never gate.
type Direction int

const (
	// LowerIsBetter marks latencies, copy counts and overheads.
	LowerIsBetter Direction = -1
	// Informational marks context values the comparator reports but
	// never gates on.
	Informational Direction = 0
	// HigherIsBetter marks throughputs and speedup ratios.
	HigherIsBetter Direction = 1
)

// Metric is one named measurement of an experiment: the value the
// comparator gates on, its unit, the drift direction that counts as a
// regression, and — when the experiment collected them — the raw
// duration or count samples behind the digest, so a recorded file can
// be re-summarised offline.
type Metric struct {
	Name      string          `json:"name"`
	Unit      string          `json:"unit"`
	Value     float64         `json:"value"`
	Direction Direction       `json:"direction"`
	Samples   []time.Duration `json:"samples_ns,omitempty"`
	Counts    []int64         `json:"counts,omitempty"`
}

// Env fingerprints the machine and configuration a result was measured
// on. The comparator refuses to gate on baselines recorded at a
// different scale/cost-scale/iteration count, and reports (without
// gating) when the hardware fingerprint differs.
type Env struct {
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	GitSHA     string  `json:"git_sha,omitempty"`
	Scale      float64 `json:"scale"`
	CostScale  float64 `json:"cost_scale"`
	Iterations int     `json:"iterations"`
	// RecordedAt is stamped by WriteResult (RFC3339, UTC), not by the
	// experiment itself — experiments stay on the injected clock.
	RecordedAt string `json:"recorded_at,omitempty"`
}

// Result is the typed outcome of one experiment: the metrics and
// subsystem snapshot carry the machine-readable data, while Header,
// Rows and Notes carry the paper-style table. Report() is a pure view
// over these fields — rendering a Result after a JSON round-trip yields
// byte-identical output, which is what bench_smoke_test proves for
// every experiment.
type Result struct {
	ID       string           `json:"id"`
	Title    string           `json:"title"`
	Env      Env              `json:"env"`
	Metrics  []Metric         `json:"metrics"`
	Snapshot metrics.Snapshot `json:"snapshot"`
	Header   []string         `json:"header"`
	Rows     [][]string       `json:"rows"`
	Notes    []string         `json:"notes,omitempty"`
}

// newResult builds an experiment result with the environment
// fingerprint filled in.
func (o Options) newResult(id, title string) *Result {
	return &Result{
		ID:    id,
		Title: title,
		Env: Env{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GitSHA:     buildGitSHA(),
			Scale:      o.Scale,
			CostScale:  o.CostScale,
			Iterations: o.Iterations,
		},
	}
}

// Report assembles the aligned-text-table view. It reads only the
// serialisable fields, so the rendered table is a pure function of the
// recorded data.
func (r *Result) Report() *Report {
	return &Report{ID: r.ID, Title: r.Title, Header: r.Header, Rows: r.Rows, Notes: r.Notes}
}

// Metric returns the named metric, or nil when the experiment did not
// record it.
func (r *Result) Metric(name string) *Metric {
	for i := range r.Metrics {
		if r.Metrics[i].Name == name {
			return &r.Metrics[i]
		}
	}
	return nil
}

// add appends a metric.
func (r *Result) add(m Metric) { r.Metrics = append(r.Metrics, m) }

// msCell records a millisecond latency metric and returns the table
// cell the pre-refactor tables printed for it.
func (r *Result) msCell(name string, dir Direction, d time.Duration, samples ...time.Duration) string {
	r.add(Metric{Name: name, Unit: "ms", Value: float64(d) / float64(time.Millisecond),
		Direction: dir, Samples: samples})
	return ms(d)
}

// usCell records a microsecond latency metric and returns its cell.
func (r *Result) usCell(name string, dir Direction, d time.Duration, samples ...time.Duration) string {
	r.add(Metric{Name: name, Unit: "us", Value: float64(d) / float64(time.Microsecond),
		Direction: dir, Samples: samples})
	return us(d)
}

// countCell records an integer counter metric and returns its cell.
func (r *Result) countCell(name string, dir Direction, v int64) string {
	r.add(Metric{Name: name, Unit: "count", Value: float64(v), Direction: dir})
	return fmt.Sprint(v)
}

// gauge records a metric that has no table cell of its own (ratios,
// percentages, throughputs folded into notes).
func (r *Result) gauge(name, unit string, dir Direction, v float64) {
	r.add(Metric{Name: name, Unit: unit, Value: v, Direction: dir})
}

// metricKey joins name parts into a stable metric identifier, squeezing
// out the characters table labels use that metric names should not.
func metricKey(parts ...string) string {
	s := strings.Join(parts, "/")
	return strings.NewReplacer(" ", "_", "(", "", ")", "").Replace(s)
}

// wallNow is the single approved wall-clock read in this package: the
// default Options.Clock and the recorder's RecordedAt timestamp both
// funnel through it. Every measurement loop reads the injected clock,
// which is what asvet's wallclock analyzer enforces.
func wallNow() time.Time {
	return time.Now() //asvet:allow wallclock -- the one approved injection point: default clock + recorder timestamp
}

// buildGitSHA reads the VCS revision stamped into the binary; shared
// with the watchdog/gateway build_info gauge via metrics.GitSHA.
func buildGitSHA() string {
	return metrics.GitSHA()
}
