package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"alloystack/internal/metrics"
)

func testEnv() Env {
	return Env{
		GoVersion: "go1.21", GOOS: "linux", GOARCH: "amd64", NumCPU: 8,
		Scale: 0.01, CostScale: 0.01, Iterations: 1,
	}
}

func resultWith(ms ...Metric) *Result {
	return &Result{ID: "synthetic", Title: "synthetic", Env: testEnv(), Metrics: ms}
}

// strictOpts disables the absolute floor so the relative band is the
// only tolerance under test.
func strictOpts(band float64) CompareOptions {
	return CompareOptions{Band: band, FloorMS: -1}
}

func TestCompareWithinAndBeyondBand(t *testing.T) {
	base := resultWith(Metric{Name: "p50_ms/x", Unit: "ms", Value: 100, Direction: LowerIsBetter})

	// Exactly at the band: 100 -> 150 with a 0.5 band is allowed.
	cur := resultWith(Metric{Name: "p50_ms/x", Unit: "ms", Value: 150, Direction: LowerIsBetter})
	c := Compare(cur, base, strictOpts(0.5))
	if len(c.Deltas) != 1 || c.Deltas[0].Regressed {
		t.Fatalf("drift exactly at band must pass: %+v", c.Deltas)
	}

	// A hair beyond the band regresses.
	cur = resultWith(Metric{Name: "p50_ms/x", Unit: "ms", Value: 150.01, Direction: LowerIsBetter})
	c = Compare(cur, base, strictOpts(0.5))
	if regs := c.Regressions(); len(regs) != 1 {
		t.Fatalf("drift beyond band must regress: %+v", c.Deltas)
	} else if !strings.Contains(regs[0].describe(), "p50_ms/x rose") {
		t.Fatalf("describe should name the metric and direction: %q", regs[0].describe())
	}

	// Improvement never regresses, however large.
	cur = resultWith(Metric{Name: "p50_ms/x", Unit: "ms", Value: 1, Direction: LowerIsBetter})
	if c := Compare(cur, base, strictOpts(0.5)); len(c.Regressions()) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", c.Deltas)
	}
}

func TestCompareDirectionAware(t *testing.T) {
	base := resultWith(
		Metric{Name: "tput_MBps", Unit: "MBps", Value: 200, Direction: HigherIsBetter},
		Metric{Name: "model_ms", Unit: "ms", Value: 10, Direction: Informational},
	)

	// Throughput dropping beyond the band regresses...
	cur := resultWith(
		Metric{Name: "tput_MBps", Unit: "MBps", Value: 90, Direction: HigherIsBetter},
		Metric{Name: "model_ms", Unit: "ms", Value: 1000, Direction: Informational},
	)
	c := Compare(cur, base, strictOpts(0.5))
	regs := c.Regressions()
	if len(regs) != 1 || regs[0].Name != "tput_MBps" {
		t.Fatalf("throughput drop should be the only regression: %+v", c.Deltas)
	}
	if !strings.Contains(regs[0].describe(), "fell") {
		t.Fatalf("higher-is-better regression should say fell: %q", regs[0].describe())
	}

	// ...while rising throughput is fine even at 10x.
	cur = resultWith(Metric{Name: "tput_MBps", Unit: "MBps", Value: 2000, Direction: HigherIsBetter})
	if c := Compare(cur, base, strictOpts(0.5)); len(c.Regressions()) != 0 {
		t.Fatalf("throughput gain flagged: %+v", c.Deltas)
	}
}

func TestCompareFloors(t *testing.T) {
	// 1 ms baseline: relative band is tiny, but the 5 ms floor absorbs
	// a 4 ms drift.
	base := resultWith(Metric{Name: "p50_ms/x", Unit: "ms", Value: 1, Direction: LowerIsBetter})
	cur := resultWith(Metric{Name: "p50_ms/x", Unit: "ms", Value: 5, Direction: LowerIsBetter})
	if c := Compare(cur, base, CompareOptions{}); len(c.Regressions()) != 0 {
		t.Fatalf("drift under the ms floor flagged: %+v", c.Deltas)
	}

	// Same floor in microsecond units: 5000 us.
	base = resultWith(Metric{Name: "lat_us", Unit: "us", Value: 100, Direction: LowerIsBetter})
	cur = resultWith(Metric{Name: "lat_us", Unit: "us", Value: 5000, Direction: LowerIsBetter})
	if c := Compare(cur, base, CompareOptions{}); len(c.Regressions()) != 0 {
		t.Fatalf("drift under the us floor flagged: %+v", c.Deltas)
	}

	// Counts have no floor: a copies counter going 0 -> 1 regresses.
	base = resultWith(Metric{Name: "copies/AS", Unit: "count", Value: 0, Direction: LowerIsBetter})
	cur = resultWith(Metric{Name: "copies/AS", Unit: "count", Value: 1, Direction: LowerIsBetter})
	if c := Compare(cur, base, CompareOptions{}); len(c.Regressions()) != 1 {
		t.Fatalf("structural copy regression missed: %+v", c.Deltas)
	}
}

func TestCompareEnvMismatchSkips(t *testing.T) {
	base := resultWith(Metric{Name: "p50_ms/x", Unit: "ms", Value: 1, Direction: LowerIsBetter})
	cur := resultWith(Metric{Name: "p50_ms/x", Unit: "ms", Value: 1e9, Direction: LowerIsBetter})
	cur.Env.Scale = 1.0 // baseline was recorded at 0.01
	c := Compare(cur, base, CompareOptions{})
	if c.Skipped == "" || len(c.Deltas) != 0 {
		t.Fatalf("scale mismatch must skip the gate: %+v", c)
	}
	if !strings.Contains(c.String(), "compare skipped") {
		t.Fatalf("skip reason not rendered: %q", c.String())
	}
}

func TestCompareAgainstDir(t *testing.T) {
	dir := t.TempDir()
	cur := resultWith(Metric{Name: "p50_ms/x", Unit: "ms", Value: 100, Direction: LowerIsBetter})

	// Missing baseline: recorded, not compared, not a failure.
	c, err := CompareAgainstDir(cur, dir, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Missing || len(c.Regressions()) != 0 {
		t.Fatalf("missing baseline mishandled: %+v", c)
	}
	if !strings.Contains(c.String(), "recorded, not compared") {
		t.Fatalf("missing-baseline message wrong: %q", c.String())
	}

	// Record a baseline, then a seeded regression against it.
	if _, err := WriteResult(dir, cur); err != nil {
		t.Fatal(err)
	}
	worse := resultWith(Metric{Name: "p50_ms/x", Unit: "ms", Value: 400, Direction: LowerIsBetter})
	c, err = CompareAgainstDir(worse, dir, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Regressions()) != 1 {
		t.Fatalf("seeded 4x regression not caught: %+v", c.Deltas)
	}
	if !strings.Contains(c.String(), "REGRESSION") || !strings.Contains(c.String(), "p50_ms/x") {
		t.Fatalf("regression rendering must name the metric: %q", c.String())
	}

	// A within-band rerun of the same numbers passes.
	c, err = CompareAgainstDir(cur, dir, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Regressions()) != 0 {
		t.Fatalf("identical rerun regressed: %+v", c.Deltas)
	}
}

func TestWriteResultStampsEnv(t *testing.T) {
	dir := t.TempDir()
	r := resultWith(Metric{Name: "p50_ms/x", Unit: "ms", Value: 1, Direction: LowerIsBetter})
	path, err := WriteResult(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_synthetic.json" {
		t.Fatalf("recorded file name = %s", path)
	}
	back, err := ReadResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Env.RecordedAt == "" {
		t.Fatal("RecordedAt not stamped")
	}
	if _, err := time.Parse(time.RFC3339, back.Env.RecordedAt); err != nil {
		t.Fatalf("RecordedAt not RFC3339: %q", back.Env.RecordedAt)
	}
	// Leftover temp files would pollute the baselines dir.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("dir not clean after atomic write: %v", ents)
	}
}

// TestGoldenRoundTrip pins the on-disk schema: the committed golden
// file must load, survive a decode→encode→decode cycle unchanged, and
// render its table from the serialised fields alone.
func TestGoldenRoundTrip(t *testing.T) {
	golden := filepath.Join("testdata", "BENCH_golden.json")
	r, err := ReadResult(golden)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "golden" || r.Env.GoVersion == "" || len(r.Metrics) == 0 {
		t.Fatalf("golden file misparsed: %+v", r)
	}
	if m := r.Metric("p50_ms/chain"); m == nil || m.Unit != "ms" ||
		m.Direction != LowerIsBetter || len(m.Samples) != 3 ||
		m.Samples[0] != 10*time.Millisecond {
		t.Fatalf("samples_ns did not decode to durations: %+v", m)
	}
	if r.Snapshot.Counters["journal_appends"] != 42 {
		t.Fatalf("snapshot counters misparsed: %+v", r.Snapshot)
	}
	if r.Snapshot.Latency["chain"].P50 != 10*time.Millisecond {
		t.Fatalf("snapshot latency misparsed: %+v", r.Snapshot.Latency)
	}

	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if got, want := back.Report().String(), r.Report().String(); got != want {
		t.Fatalf("golden render unstable:\n%s\nvs\n%s", got, want)
	}
	for _, cell := range []string{"function-chain", "10.00", "note: golden fixture"} {
		if !strings.Contains(r.Report().String(), cell) {
			t.Fatalf("golden table missing %q:\n%s", cell, r.Report().String())
		}
	}

	// Comparing the golden against itself is a clean pass.
	if c := Compare(r, r, CompareOptions{}); len(c.Regressions()) != 0 {
		t.Fatalf("golden vs itself regressed: %+v", c.Deltas)
	}
}

func TestSnapshotAccumulation(t *testing.T) {
	var s metrics.Snapshot
	s.AddCounter("x", 2)
	s.AddCounter("x", 3)
	if s.Counters["x"] != 5 {
		t.Fatalf("counter accumulation = %d", s.Counters["x"])
	}
	s.AddLatency("l", metrics.Summary{Count: 1, P50: time.Millisecond})
	if s.Latency["l"].P50 != time.Millisecond {
		t.Fatalf("latency snapshot = %+v", s.Latency)
	}
}
