package bench

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// CompareOptions tunes the regression gate. The defaults are
// deliberately generous: these experiments measure a simulated stack on
// shared CI hardware, so the gate is meant to catch structural
// regressions (an extra copy, a lost fast path, a 2x latency cliff),
// not 10% scheduler noise.
type CompareOptions struct {
	// Band is the relative noise band: a gating metric may drift up to
	// Band*|baseline| in its bad direction before it counts as a
	// regression. Zero means "use the default" (0.5, i.e. ±50%).
	Band float64
	// FloorMS is the absolute noise floor for duration metrics, in
	// milliseconds: drifts below it never gate, however small the
	// baseline. Zero means "use the default" (5 ms). Negative disables
	// the floor (useful in tests).
	FloorMS float64
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.Band == 0 {
		o.Band = 0.5
	}
	if o.FloorMS == 0 {
		o.FloorMS = 5
	} else if o.FloorMS < 0 {
		o.FloorMS = 0
	}
	return o
}

// floorFor translates the millisecond floor into the metric's own unit.
// Percentage metrics get a fixed 5-point floor (relative bands are
// meaningless near zero), and count metrics get none: copy and retry
// counters are deterministic, so any drift is structural.
func (o CompareOptions) floorFor(unit string) float64 {
	switch unit {
	case "ms":
		return o.FloorMS
	case "us":
		return o.FloorMS * 1000
	case "%":
		if o.FloorMS == 0 {
			return 0
		}
		return 5
	default:
		return 0
	}
}

// MetricDelta is the comparator's verdict on one gating metric.
type MetricDelta struct {
	Name      string    `json:"name"`
	Unit      string    `json:"unit"`
	Direction Direction `json:"direction"`
	Base      float64   `json:"base"`
	Current   float64   `json:"current"`
	// Drift is the change in the metric's bad direction, in its own
	// unit: positive means "got worse", negative "got better".
	Drift float64 `json:"drift"`
	// Allowance is the noise band the drift was judged against:
	// max(Band*|base|, unit floor).
	Allowance float64 `json:"allowance"`
	Regressed bool    `json:"regressed"`
}

// Comparison is the outcome of diffing one experiment against its
// recorded baseline.
type Comparison struct {
	ID           string `json:"id"`
	BaselinePath string `json:"baseline_path,omitempty"`
	// Missing means no baseline file existed: the result was recorded
	// but not compared, which is not a failure.
	Missing bool `json:"missing,omitempty"`
	// Skipped carries the reason the gate stood down (for example an
	// env mismatch: baselines from a different scale are not
	// comparable). Not a failure either.
	Skipped string        `json:"skipped,omitempty"`
	Deltas  []MetricDelta `json:"deltas,omitempty"`
}

// Regressions returns the deltas that breached the band.
func (c *Comparison) Regressions() []MetricDelta {
	var out []MetricDelta
	for _, d := range c.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// String renders the comparison the way the CLI prints it: one line per
// regression naming the metric and how far past the band it landed,
// or a single all-clear line.
func (c *Comparison) String() string {
	var b strings.Builder
	switch {
	case c.Missing:
		fmt.Fprintf(&b, "%s: recorded, not compared (no baseline)", c.ID)
	case c.Skipped != "":
		fmt.Fprintf(&b, "%s: compare skipped: %s", c.ID, c.Skipped)
	case len(c.Regressions()) == 0:
		fmt.Fprintf(&b, "%s: OK (%d metrics within band)", c.ID, len(c.Deltas))
	default:
		fmt.Fprintf(&b, "%s: REGRESSION", c.ID)
		for _, d := range c.Regressions() {
			fmt.Fprintf(&b, "\n  %s", d.describe())
		}
	}
	return b.String()
}

// String renders the delta the way regression lines print it.
func (d MetricDelta) String() string { return d.describe() }

func (d MetricDelta) describe() string {
	verb := "rose"
	if d.Direction == HigherIsBetter {
		verb = "fell"
	}
	pct := ""
	if d.Base != 0 {
		pct = fmt.Sprintf(" (%+.0f%%)", 100*(d.Current-d.Base)/math.Abs(d.Base))
	}
	return fmt.Sprintf("%s %s %.4g -> %.4g %s%s, drift %.4g > allowed %.4g",
		d.Name, verb, d.Base, d.Current, d.Unit, pct, d.Drift, d.Allowance)
}

// Compare diffs cur against base metric-by-metric. Only metrics with a
// gating direction participate; informational metrics and metrics
// absent from the baseline are ignored. A drift exactly at the
// allowance is within band — only strictly beyond it regresses.
func Compare(cur, base *Result, o CompareOptions) *Comparison {
	o = o.withDefaults()
	c := &Comparison{ID: cur.ID}
	if base == nil {
		c.Missing = true
		return c
	}
	if reason := envMismatch(cur.Env, base.Env); reason != "" {
		c.Skipped = reason
		return c
	}
	for _, m := range cur.Metrics {
		if m.Direction == Informational {
			continue
		}
		bm := base.Metric(m.Name)
		if bm == nil {
			continue // new metric: recorded, nothing to gate against
		}
		drift := m.Value - bm.Value
		if m.Direction == HigherIsBetter {
			drift = -drift
		}
		allowance := math.Max(o.Band*math.Abs(bm.Value), o.floorFor(m.Unit))
		c.Deltas = append(c.Deltas, MetricDelta{
			Name:      m.Name,
			Unit:      m.Unit,
			Direction: m.Direction,
			Base:      bm.Value,
			Current:   m.Value,
			Drift:     drift,
			Allowance: allowance,
			Regressed: drift > allowance,
		})
	}
	return c
}

// envMismatch reports why two environments are not comparable, or ""
// when they are. Only the knobs that change what is being measured
// (scale, cost scale, iteration count) block comparison; hardware
// differences widen noise but the band absorbs them.
func envMismatch(cur, base Env) string {
	switch {
	case cur.Scale != base.Scale:
		return fmt.Sprintf("scale %g vs baseline %g", cur.Scale, base.Scale)
	case cur.CostScale != base.CostScale:
		return fmt.Sprintf("cost-scale %g vs baseline %g", cur.CostScale, base.CostScale)
	case cur.Iterations != base.Iterations:
		return fmt.Sprintf("iterations %d vs baseline %d", cur.Iterations, base.Iterations)
	}
	return ""
}

// CompareAgainstDir diffs cur against the BENCH_<id>.json baseline in
// dir, tolerating a missing file (Missing=true, no regressions).
func CompareAgainstDir(cur *Result, dir string, o CompareOptions) (*Comparison, error) {
	path := filepath.Join(dir, BenchFileName(cur.ID))
	base, err := ReadResult(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			c := Compare(cur, nil, o)
			return c, nil
		}
		return nil, err
	}
	c := Compare(cur, base, o)
	c.BaselinePath = path
	return c, nil
}
