package bench

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strings"
	"time"

	"alloystack/internal/asstd"
	"alloystack/internal/asvm"
	"alloystack/internal/baselines"
	"alloystack/internal/blockdev"
	"alloystack/internal/fatfs"
	"alloystack/internal/netstack"
	"alloystack/internal/visor"
	"alloystack/internal/workloads"
)

// Table1 traces which as-libos modules each ServerlessBench-style
// function pulls in, reproducing the paper's Table 1 with this
// repository's module set (Table 2 names).
func Table1(o Options) (*Result, error) {
	o = o.withDefaults()
	reg := visor.NewRegistry()
	hub := netstack.NewHub()
	nextIP := byte(1)

	// Probe functions exercising the characteristic syscall mix of each
	// Table 1 entry.
	probes := []struct {
		name string
		fn   visor.NativeFunc
	}{
		{"alu", func(env *asstd.Env, ctx visor.FuncContext) error {
			b, err := asstd.NewBuffer(env, "alu", 4096)
			if err != nil {
				return err
			}
			for i := range b.Bytes() {
				b.Bytes()[i] = byte(i * i)
			}
			return b.Free()
		}},
		{"parallel-alu", func(env *asstd.Env, ctx visor.FuncContext) error {
			if _, err := asstd.Now(env); err != nil {
				return err
			}
			b, err := asstd.NewBuffer(env, "palu", 4096)
			if err != nil {
				return err
			}
			return b.Free()
		}},
		{"long-chain", func(env *asstd.Env, ctx visor.FuncContext) error {
			b, err := asstd.NewBuffer(env, "lc", 64)
			if err != nil {
				return err
			}
			return b.Free()
		}},
		{"extract-image-metadata", func(env *asstd.Env, ctx visor.FuncContext) error {
			if _, err := asstd.Now(env); err != nil {
				return err
			}
			if err := asstd.MountFS(env); err != nil {
				return err
			}
			if err := asstd.WriteFile(env, "/IMG.BIN", make([]byte, 4096)); err != nil {
				return err
			}
			_, err := asstd.LocalIP(env)
			return err
		}},
		{"transform-metadata", func(env *asstd.Env, ctx visor.FuncContext) error {
			if _, err := asstd.Now(env); err != nil {
				return err
			}
			b, err := asstd.NewBuffer(env, "tm", 512)
			if err != nil {
				return err
			}
			return b.Free()
		}},
		{"handler", func(env *asstd.Env, ctx visor.FuncContext) error {
			if _, err := asstd.Now(env); err != nil {
				return err
			}
			if _, err := asstd.NewBuffer(env, "h", 128); err != nil {
				return err
			}
			_, err := asstd.LocalIP(env)
			return err
		}},
		{"thumbnail", func(env *asstd.Env, ctx visor.FuncContext) error {
			if _, err := asstd.Now(env); err != nil {
				return err
			}
			if err := asstd.MountFS(env); err != nil {
				return err
			}
			if err := asstd.WriteFile(env, "/THUMB.BIN", make([]byte, 1024)); err != nil {
				return err
			}
			_, err := asstd.LocalIP(env)
			return err
		}},
		{"store-image-metadata", func(env *asstd.Env, ctx visor.FuncContext) error {
			if _, err := asstd.Now(env); err != nil {
				return err
			}
			if _, err := asstd.NewBuffer(env, "sim", 256); err != nil {
				return err
			}
			_, err := asstd.LocalIP(env)
			return err
		}},
		{"online-compiling", func(env *asstd.Env, ctx visor.FuncContext) error {
			if _, err := asstd.Now(env); err != nil {
				return err
			}
			if err := asstd.MountFS(env); err != nil {
				return err
			}
			if err := asstd.WriteFile(env, "/OBJ.BIN", make([]byte, 2048)); err != nil {
				return err
			}
			if _, err := asstd.LocalIP(env); err != nil {
				return err
			}
			if _, err := asstd.Stdout(env, []byte("compiled\n")); err != nil {
				return err
			}
			_, err := asstd.MmapFile(env, "/OBJ.BIN", 0)
			return err
		}},
	}

	rep := o.newResult("table1", "as-libos modules loaded per serverless function (paper Table 1)")
	rep.Header = []string{"Function", "Loaded modules"}
	for _, p := range probes {
		reg.RegisterNative(p.name, p.fn)
		v := visor.New(reg)
		w := workloads.NoOps()
		w.Functions[0].Name = p.name
		ip := netstack.IP(10, 77, 0, nextIP)
		nextIP++
		res := make(chan error, 1)
		ro := alloyOpts(o, func(r *visor.RunOptions) {
			r.CostScale = 0 // tracing, not timing
			r.DiskImage = blockdev.NewMemDisk(8 << 20)
			r.Hub = hub
			r.IP = ip
		})
		// Run on a fresh WFD and collect the loader trace.
		runRes, err := v.RunWorkflow(w, ro)
		_ = runRes
		res <- err
		if err := <-res; err != nil {
			return nil, fmt.Errorf("probe %s: %w", p.name, err)
		}
		// RunWorkflow destroys the WFD; trace module loads by running
		// again with a namespace we keep. Simpler: rebuild via core.
		mods, err := traceModules(o, p.fn, ip, hub)
		if err != nil {
			return nil, fmt.Errorf("trace %s: %w", p.name, err)
		}
		rep.Rows = append(rep.Rows, []string{p.name, strings.Join(mods, ", ")})
		// On-demand loading is the point of Table 1: a probe pulling in
		// more modules than the baseline recording is a regression.
		rep.gauge(metricKey("modules", p.name), "count", LowerIsBetter, float64(len(mods)))
	}
	return emit(o, rep), nil
}

// traceModules runs fn on a fresh WFD and returns the loaded module set.
func traceModules(o Options, fn visor.NativeFunc, ip netstack.Addr, hub *netstack.Hub) ([]string, error) {
	wfd, err := newWFD(o, ip, hub)
	if err != nil {
		return nil, err
	}
	defer wfd.Destroy()
	if err := wfd.Run("probe", func(env *asstd.Env) error {
		return fn(env, visor.FuncContext{Function: "probe"})
	}); err != nil {
		return nil, err
	}
	return wfd.NS.LoadedModules(), nil
}

// Fig2 prints the software-stack startup comparison (paper Figure 2):
// modelled constants for the hardware-gated stacks, measured latency for
// AlloyStack.
func Fig2(o Options) (*Result, error) {
	o = o.withDefaults()
	costs := baselines.DefaultCosts()
	asCold, err := measureASColdStart(o, false, false)
	if err != nil {
		return nil, err
	}
	rep := o.newResult("fig2", "startup latency across software stacks (paper Fig 2)")
	rep.Header = []string{"Stack", "Startup (ms)", "Source"}
	rep.Rows = [][]string{
		{"MicroVM (device model + guest kernel)",
			rep.msCell("startup_ms/microvm", Informational, costs.MicroVMBoot), "model [paper 1186ms]"},
		{"Unikernel (Unikraft/Firecracker)",
			rep.msCell("startup_ms/unikernel", Informational, costs.UnikraftBoot), "model [paper 137ms]"},
		{"Virtines (KVM, no guest kernel)",
			rep.msCell("startup_ms/virtines", Informational, costs.VirtinesBoot), "model [paper 22.8ms]"},
		{"AlloyStack WFD (on-demand LibOS)",
			rep.msCell("startup_ms/alloystack", LowerIsBetter, asCold), "measured"},
	}
	return emit(o, rep), nil
}

// Fig3 measures the four communication primitives of §2.3 across sizes.
func Fig3(o Options) (*Result, error) {
	o = o.withDefaults()
	sizes := []int64{o.size(4 << 10), o.size(1 << 20), o.size(16 << 20), o.size(64 << 20)}
	rep := o.newResult("fig3", "communication primitive latency (paper Fig 3)")
	rep.Header = []string{"Size", "Inter-VM TCP (us)", "Inter-Proc TCP (us)",
		"Shared Memory (us)", "Function Call (us)"}
	rep.Notes = []string{
		"function call and shared memory run real code; TCP rows use the host loopback;",
		"the Inter-VM row adds the modelled virtualisation cost per transfer.",
	}
	for _, size := range sizes {
		ivtcp, err := measureLoopbackTCP(size, true, o.CostScale, o.Clock)
		if err != nil {
			return nil, err
		}
		iptcp, err := measureLoopbackTCP(size, false, o.CostScale, o.Clock)
		if err != nil {
			return nil, err
		}
		shm, err := measureSharedMemory(size, o.Clock)
		if err != nil {
			return nil, err
		}
		fc := measureFunctionCall(size, o.Clock)
		label := humanBytes(size)
		rep.Rows = append(rep.Rows, []string{
			label,
			rep.usCell(metricKey("intervm_tcp_us", label), LowerIsBetter, ivtcp),
			rep.usCell(metricKey("interproc_tcp_us", label), LowerIsBetter, iptcp),
			rep.usCell(metricKey("shared_memory_us", label), LowerIsBetter, shm),
			rep.usCell(metricKey("function_call_us", label), LowerIsBetter, fc),
		})
	}
	return emit(o, rep), nil
}

// measureLoopbackTCP transfers size bytes over a fresh host-loopback TCP
// connection. vm=true adds the modelled inter-VM virtualisation costs.
func measureLoopbackTCP(size int64, vm bool, costScale float64, now func() time.Time) (time.Duration, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		buf := make([]byte, 256*1024)
		var got int64
		for got < size {
			n, err := c.Read(buf)
			got += int64(n)
			if err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	start := now()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return 0, err
	}
	payload := make([]byte, size)
	if _, err := c.Write(payload); err != nil {
		return 0, err
	}
	if err := <-done; err != nil {
		return 0, err
	}
	c.Close()
	d := now().Sub(start)
	if vm && costScale > 0 {
		// Virtio queue kicks and VM exits per 64 KiB segment batch plus
		// connection setup through two guest kernels [est].
		exits := size/(64<<10) + 1
		d += time.Duration(float64(exits*25+200) * float64(time.Microsecond) * costScale)
	}
	return d, nil
}

// measureSharedMemory reproduces the paper's method (3): a pre-shared
// buffer, a one-byte pipe notification, and a full traversal by the
// receiver.
func measureSharedMemory(size int64, now func() time.Time) (time.Duration, error) {
	shared := make([]byte, size)
	rd, wr, err := os.Pipe()
	if err != nil {
		return 0, err
	}
	defer rd.Close()
	defer wr.Close()
	done := make(chan byte, 1)
	go func() {
		var b [1]byte
		rd.Read(b[:])
		sum := byte(0)
		for _, v := range shared {
			sum ^= v
		}
		done <- sum
	}()
	// Data initialisation happens before the measured window, as in §2.3.
	for i := range shared {
		shared[i] = byte(i)
	}
	start := now()
	wr.Write([]byte{1})
	<-done
	return now().Sub(start), nil
}

// measureFunctionCall is method (4): the sender writes a buffer and
// directly invokes the receiver, which traverses it — plain loads and
// stores in one address space.
func measureFunctionCall(size int64, now func() time.Time) time.Duration {
	buf := make([]byte, size)
	for i := range buf {
		buf[i] = byte(i)
	}
	receiver := func(data []byte) byte {
		sum := byte(0)
		for _, v := range data {
			sum ^= v
		}
		return sum
	}
	start := now()
	sink := receiver(buf)
	_ = sink
	return now().Sub(start)
}

// measureASColdStart instantiates a no-ops workflow and reports the
// cold-start latency (event to user code).
func measureASColdStart(o Options, loadAll bool, python bool) (time.Duration, error) {
	v := newAlloyVisor()
	lang := "native"
	if python {
		lang = "python"
	}
	w := workloads.NoOps()
	w.Functions[0].Language = lang

	samples := make([]time.Duration, 0, o.Iterations)
	for i := 0; i < o.Iterations; i++ {
		ro := alloyOpts(o, func(r *visor.RunOptions) {
			r.OnDemand = !loadAll
		})
		if loadAll || python {
			img, err := workloads.BuildEmptyImage(python)
			if err != nil {
				return 0, err
			}
			ro.DiskImage = img
		}
		if loadAll {
			hub := netstack.NewHub()
			ro.Hub = hub
			ro.IP = netstack.IP(10, 99, 0, byte(i+1))
		}
		res, err := v.RunWorkflow(w, ro)
		if err != nil {
			return 0, err
		}
		cold := res.ColdStart
		if python {
			// For the Python tier the paper counts runtime init in the
			// startup path; our runtime-image read happens inside the
			// function, so charge the whole invocation.
			cold = res.E2E
		}
		samples = append(samples, cold)
	}
	return median(samples), nil
}

// Fig10 reproduces the cold-start comparison.
func Fig10(o Options) (*Result, error) {
	o = o.withDefaults()
	asCold, err := measureASColdStart(o, false, false)
	if err != nil {
		return nil, err
	}
	loadAll, err := measureASColdStart(o, true, false)
	if err != nil {
		return nil, err
	}
	asPy, err := measureASColdStart(o, false, true)
	if err != nil {
		return nil, err
	}
	rep := o.newResult("fig10", "cold start latency (paper Fig 10)")
	rep.Header = []string{"System", "Cold start (ms)", "Source"}
	rep.Rows = append(rep.Rows,
		[]string{"AlloyStack", rep.msCell("cold_ms/AlloyStack", LowerIsBetter, asCold), "measured [paper 1.3ms]"},
		[]string{"AS-load-all", rep.msCell("cold_ms/AS-load-all", LowerIsBetter, loadAll), "measured [paper 89.4ms]"},
		[]string{"AS-Py", rep.msCell("cold_ms/AS-Py", LowerIsBetter, asPy), "measured (runtime image via fatfs)"},
	)
	models := baselines.ColdStartOnly(baselines.DefaultCosts())
	names := make([]string, 0, len(models))
	for n := range models {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return models[names[i]] < models[names[j]] })
	for _, n := range names {
		rep.Rows = append(rep.Rows, []string{n,
			rep.msCell(metricKey("cold_ms", n), Informational,
				time.Duration(float64(models[n])*o.CostScale)), "model"})
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("on-demand saving: load-all %.1fms vs on-demand %.1fms (paper: 89.4 vs 1.3)",
			float64(loadAll)/1e6, float64(asCold)/1e6))
	return emit(o, rep), nil
}

// Table4 measures the LibOS substrates against the host-kernel paths:
// fatfs vs ext4-model and the userspace netstack vs real loopback TCP.
func Table4(o Options) (*Result, error) {
	o = o.withDefaults()
	const fileSize = 32 << 20
	fatRead, fatWrite, err := measureFatfsThroughput(fileSize, o.Clock)
	if err != nil {
		return nil, err
	}
	rxBps, txBps, err := measureNetstackThroughput(16<<20, o.Clock)
	if err != nil {
		return nil, err
	}
	loopRx, err := measureLoopbackThroughput(16<<20, o.Clock)
	if err != nil {
		return nil, err
	}
	costs := baselines.DefaultCosts()
	mbps := func(bps float64) string { return fmt.Sprintf("%.0f", bps/(1<<20)) }
	gbps := func(bps float64) string { return fmt.Sprintf("%.3f", bps*8/1e9) }
	rep := o.newResult("table4", "LibOS substrate performance vs host kernel (paper Table 4)")
	rep.Header = []string{"Layer", "Module", "Read/RX", "Write/TX", "Unit"}
	rep.Rows = [][]string{
		{"File system", "fatfs (measured)", mbps(fatRead), mbps(fatWrite), "MB/s"},
		{"File system", "ext4 (model)", mbps(float64(costs.Ext4ReadBps)), mbps(float64(costs.Ext4WriteBps)), "MB/s"},
		{"TCP", "netstack (measured)", gbps(rxBps), gbps(txBps), "Gbit/s"},
		{"TCP", "host loopback (measured)", gbps(loopRx), gbps(loopRx), "Gbit/s"},
	}
	rep.Notes = []string{
		"paper: rust-fatfs 362/1562 MB/s vs ext4 1351/1282; smoltcp 1.751/5.366 Gbit/s vs Linux 27.76/28.56",
		"shape check: the LibOS filesystem and TCP stack are slower than the kernel paths",
	}
	// Throughputs gate in the opposite direction from latencies: a drop
	// below the noise band is the regression.
	rep.gauge("fatfs_read_MBps", "MB/s", HigherIsBetter, fatRead/(1<<20))
	rep.gauge("fatfs_write_MBps", "MB/s", HigherIsBetter, fatWrite/(1<<20))
	rep.gauge("netstack_rx_Gbps", "Gbit/s", HigherIsBetter, rxBps*8/1e9)
	rep.gauge("netstack_tx_Gbps", "Gbit/s", HigherIsBetter, txBps*8/1e9)
	rep.gauge("loopback_Gbps", "Gbit/s", Informational, loopRx*8/1e9)
	return emit(o, rep), nil
}

func measureFatfsThroughput(size int64, now func() time.Time) (readBps, writeBps float64, err error) {
	// Measure through the same shaped device workloads mount (the
	// calibration that keeps fatfs at the paper's Table 4 read speed).
	dev := workloads.ShapeImage(blockdev.NewMemDisk(size*2 + (16 << 20)))
	fs, err := fatfs.Format(dev, fatfs.MkfsOptions{})
	if err != nil {
		return 0, 0, err
	}
	payload := make([]byte, size)
	f, err := fs.Create("TPUT.BIN")
	if err != nil {
		return 0, 0, err
	}
	start := now()
	if _, err := f.WriteAt(payload, 0); err != nil {
		return 0, 0, err
	}
	writeBps = float64(size) / now().Sub(start).Seconds()
	buf := make([]byte, size)
	start = now()
	if _, err := f.ReadAt(buf, 0); err != nil && !errors.Is(err, io.EOF) {
		return 0, 0, err
	}
	readBps = float64(size) / now().Sub(start).Seconds()
	return readBps, writeBps, nil
}

func measureNetstackThroughput(size int64, now func() time.Time) (rxBps, txBps float64, err error) {
	hub := netstack.NewHub()
	n1, err := hub.Attach(netstack.IP(10, 66, 0, 1))
	if err != nil {
		return 0, 0, err
	}
	n2, err := hub.Attach(netstack.IP(10, 66, 0, 2))
	if err != nil {
		return 0, 0, err
	}
	s1, s2 := netstack.NewStack(n1), netstack.NewStack(n2)
	defer s1.Close()
	defer s2.Close()
	l, err := s2.Listen(9)
	if err != nil {
		return 0, 0, err
	}
	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		buf := make([]byte, 256*1024)
		var got int64
		for got < size {
			n, err := c.Read(buf)
			got += int64(n)
			if err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	c, err := s1.Dial(netstack.Endpoint{Addr: s2.Addr(), Port: 9})
	if err != nil {
		return 0, 0, err
	}
	chunk := make([]byte, 256*1024)
	start := now()
	var sent int64
	for sent < size {
		n, err := c.Write(chunk)
		sent += int64(n)
		if err != nil {
			return 0, 0, err
		}
	}
	if err := <-done; err != nil {
		return 0, 0, err
	}
	elapsed := now().Sub(start).Seconds()
	bps := float64(size) / elapsed
	// One-directional stream: RX and TX observe the same goodput.
	return bps, bps, nil
}

func measureLoopbackThroughput(size int64, now func() time.Time) (float64, error) {
	d, err := measureLoopbackTCP(size, false, 0, now)
	if err != nil {
		return 0, err
	}
	return float64(size) / d.Seconds(), nil
}

// Engines is the extra ablation explaining Figure 13's Wasmtime/WAVM
// gap: the same guest program under interpreter, AOT-with-overhead
// (Wasmtime model) and plain AOT (WAVM model).
func Engines(o Options) (*Result, error) {
	o = o.withDefaults()
	prog := asvm.MustAssemble(`
memory 4096
func spin 1 3 1
  push 0
  local.set 1
  push 0
  local.set 2
eloop:
  local.get 2
  local.get 0
  lt
  jz edone
  local.get 1
  local.get 2
  xor
  local.set 1
  local.get 2
  push 1
  add
  local.set 2
  jmp eloop
edone:
  local.get 1
  ret
end
`)
	iters := int64(3_000_000)
	run := func(engine asvm.EngineKind, factor float64) (time.Duration, error) {
		inst, err := asvm.NewLinker().Instantiate(prog, asvm.Config{
			Engine: engine, OverheadFactor: factor,
		})
		if err != nil {
			return 0, err
		}
		start := o.now()
		if _, err := inst.Call("spin", iters); err != nil {
			return 0, err
		}
		return o.since(start), nil
	}
	aot, err := run(asvm.EngineAOT, 1.0)
	if err != nil {
		return nil, err
	}
	wasmtime, err := run(asvm.EngineAOT, 1.3)
	if err != nil {
		return nil, err
	}
	interp, err := run(asvm.EngineInterp, 1.0)
	if err != nil {
		return nil, err
	}
	rep := o.newResult("engines", "guest engine ablation (explains Fig 13's Wasmtime vs WAVM gap)")
	rep.Header = []string{"Engine", "Time (ms)", "vs WAVM-model"}
	rep.Rows = [][]string{
		{"AOT factor 1.0 (WAVM/LLVM model)", rep.msCell("engine_ms/wavm", LowerIsBetter, aot), "1.00x"},
		{"AOT factor 1.3 (Wasmtime/Cranelift model)", rep.msCell("engine_ms/wasmtime", LowerIsBetter, wasmtime),
			fmt.Sprintf("%.2fx", float64(wasmtime)/float64(aot))},
		{"Interpreter (Python-tier bytecode)", rep.msCell("engine_ms/interp", LowerIsBetter, interp),
			fmt.Sprintf("%.2fx", float64(interp)/float64(aot))},
	}
	rep.Notes = []string{"paper §8.5: Wasmtime measured ≈30% slower than WAVM"}
	rep.gauge("engine_ratio/wasmtime", "x", Informational, float64(wasmtime)/float64(aot))
	rep.gauge("engine_ratio/interp", "x", Informational, float64(interp)/float64(aot))
	return emit(o, rep), nil
}
