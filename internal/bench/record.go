package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

// BenchFileName is the on-disk name for a recorded experiment result.
// The BENCH_ prefix keeps the files greppable and lets CI glob them for
// artifact upload without knowing the experiment list.
func BenchFileName(id string) string {
	return "BENCH_" + id + ".json"
}

// WriteResult records r as BENCH_<id>.json under dir, stamping the
// recording timestamp and — when the build info did not embed one — the
// git revision of the working tree. Files are written atomically
// (temp + rename) so a crashed run never leaves a torn baseline.
func WriteResult(dir string, r *Result) (string, error) {
	if r == nil || r.ID == "" {
		return "", fmt.Errorf("bench: cannot record a result without an ID")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	r.Env.RecordedAt = wallNow().UTC().Format(time.RFC3339)
	if r.Env.GitSHA == "" {
		r.Env.GitSHA = gitHeadSHA()
	}
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	blob = append(blob, '\n')
	path := filepath.Join(dir, BenchFileName(r.ID))
	tmp, err := os.CreateTemp(dir, ".bench-*")
	if err != nil {
		return "", err
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	return path, nil
}

// ReadResult loads a recorded BENCH_*.json file.
func ReadResult(path string) (*Result, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Result
	dec := json.NewDecoder(bytes.NewReader(blob))
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if r.ID == "" {
		return nil, fmt.Errorf("bench: %s: missing result ID", path)
	}
	return &r, nil
}

// gitHeadSHA asks the working tree for HEAD when the binary was not
// stamped with a VCS revision (`go run` and test binaries are not).
// Best-effort: an empty string means "unknown", not an error.
func gitHeadSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
