package bench

import (
	"fmt"
	"os"
	"time"

	"alloystack/internal/metrics"
	"alloystack/internal/visor"
	"alloystack/internal/workloads"
)

// obsRuns is the per-arm sample count: enough for a stable p50 of the
// ~1 s python chain without making the cheap CI set crawl.
const obsRuns = 9

// Observability measures what the always-on telemetry plane costs. Two
// arms over the interpreter-tier function chain (5 Python functions,
// the representative serverless case):
//
//	off — the bare runtime path: RunWorkflow with no tracer and no
//	      histogram observation
//	on  — the full always-on path every production invocation takes:
//	      a flight-recorder tracer from Telemetry.StartRun, the run
//	      itself, then ObserveRun (tail-sampling decision, histogram
//	      observation with exemplar, trace retention)
//
// The telemetry plane is built for always-on deployment, so the added
// p50 must stay under 2% — the headline acceptance number, reported as
// an informational gauge (a difference of two noisy numbers; the
// per-arm p50s are what gate, PR-7 precedent).
//
// A third, untimed phase points a tight SLO (objective 1ns, so every
// run burns budget) at the same workflow to demonstrate the anomaly
// capture path end to end: the breach transition must produce a
// capture directory with profiles and the flight recorder.
func Observability(o Options) (*Result, error) {
	o = o.withDefaults()
	size := o.size(16 << 20)
	w := workloads.FunctionChain(5, size, "python")
	v := newAlloyVisor()

	// Input images are single-use (runs consume them), so every
	// invocation builds a fresh one outside the timed window.
	buildOpts := func(mutate func(*visor.RunOptions)) (visor.RunOptions, error) {
		ro := alloyOpts(o, mutate)
		img, err := workloads.BuildEmptyImage(true)
		if err != nil {
			return ro, err
		}
		ro.DiskImage = img
		return ro, nil
	}

	tel := visor.NewTelemetry(visor.TelemetryConfig{
		SamplerSeed: 1,
		Clock:       o.Clock,
	})

	var off, on []time.Duration
	for i := 0; i < obsRuns; i++ {
		// Arm 1: telemetry off.
		ro, err := buildOpts(nil)
		if err != nil {
			return nil, err
		}
		start := o.now()
		if _, err := v.RunWorkflow(w, ro); err != nil {
			return nil, fmt.Errorf("off run %d: %w", i, err)
		}
		off = append(off, o.since(start))

		// Arm 2: telemetry on — the timed window is the whole always-on
		// path, exactly as the watchdog drives it per invocation.
		ro, err = buildOpts(nil)
		if err != nil {
			return nil, err
		}
		start = o.now()
		tracer := tel.StartRun(w.Name)
		ro.Trace = tracer
		_, rerr := v.RunWorkflow(w, ro)
		d := o.since(start)
		tel.ObserveRun(w.Name, tracer, d, rerr)
		if rerr != nil {
			return nil, fmt.Errorf("on run %d: %w", i, rerr)
		}
		on = append(on, d)
	}
	retained, dropped := tel.Retained()

	// Phase 3 (untimed): drive the anomaly-capture path. A 1ns objective
	// makes every run burn error budget, so the first observation
	// transitions the SLO into breach and snapshots profiles plus the
	// triggering run's flight recorder.
	capDir := o.ArtifactsDir
	if capDir == "" {
		tmp, err := os.MkdirTemp("", "asbench-obs-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		capDir = tmp
	} else if err := os.MkdirAll(capDir, 0o755); err != nil {
		return nil, err
	}
	capTel := visor.NewTelemetry(visor.TelemetryConfig{
		SamplerSeed:       1,
		SLO:               metrics.SLOConfig{Objective: time.Nanosecond},
		CaptureDir:        capDir,
		CaptureCPUProfile: 50 * time.Millisecond,
		Clock:             o.Clock,
	})
	ro, err := buildOpts(nil)
	if err != nil {
		return nil, err
	}
	tracer := capTel.StartRun(w.Name)
	ro.Trace = tracer
	_, rerr := v.RunWorkflow(w, ro)
	capTel.ObserveRun(w.Name, tracer, time.Second, rerr)
	if rerr != nil {
		return nil, fmt.Errorf("capture run: %w", rerr)
	}
	capTel.WaitCaptures()
	captures, lastCap := capTel.Captures()
	if captures == 0 {
		return nil, fmt.Errorf("SLO breach produced no anomaly capture in %s", capDir)
	}

	overhead := 100 * (float64(percentile(on, 50)) - float64(percentile(off, 50))) /
		float64(percentile(off, 50))

	r := o.newResult("obs", "always-on telemetry: histogram + tail-sampled tracing overhead (python chain x5)")
	r.Header = []string{"arm", "p50 (ms)", "p99 (ms)"}
	r.Rows = [][]string{
		{"telemetry off",
			r.msCell("p50_ms/off", LowerIsBetter, percentile(off, 50), off...),
			r.msCell("p99_ms/off", LowerIsBetter, percentile(off, 99))},
		{"telemetry on (always-on path)",
			r.msCell("p50_ms/on", LowerIsBetter, percentile(on, 50), on...),
			r.msCell("p99_ms/on", LowerIsBetter, percentile(on, 99))},
	}
	r.Snapshot.AddLatency("off", metrics.Summarize(off))
	r.Snapshot.AddLatency("on", metrics.Summarize(on))
	r.Snapshot.AddCounter("traces_retained", retained)
	r.Snapshot.AddCounter("traces_dropped", dropped)
	r.Snapshot.AddCounter("anomaly_captures", captures)
	r.gauge("telemetry_overhead_pct", "%", Informational, overhead)
	r.Notes = append(r.Notes,
		fmt.Sprintf("%d runs per arm; on-arm window = StartRun + run + ObserveRun (the watchdog's path)", obsRuns),
		fmt.Sprintf("telemetry overhead p50: %+.1f%% (target < 2%%; per-arm p50s gate, the delta is informational)", overhead),
		fmt.Sprintf("tail sampler: %d retained, %d dropped (failed/tail always keep; base rate 1%%)", retained, dropped),
		fmt.Sprintf("anomaly capture: %d capture(s); latest in %s (cpu.pprof, heap.pprof, flight.txt, trace.json)", captures, lastCap))
	if o.ArtifactsDir != "" {
		r.Notes = append(r.Notes, fmt.Sprintf("capture artifacts kept in %s", capDir))
	}
	return emit(o, r), nil
}
