package bench

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"alloystack/internal/asstd"
	"alloystack/internal/blockdev"
	"alloystack/internal/cluster"
	"alloystack/internal/core"
	"alloystack/internal/dag"
	"alloystack/internal/gateway"
	"alloystack/internal/metrics"
	"alloystack/internal/pool"
	"alloystack/internal/visor"
)

// Cluster measures the cluster plane end to end: 1, 2 and 4 in-process
// visor nodes behind one gateway routing by damped rendezvous hash.
// Each level registers clusterFlows workflows, each owned (spec + warm
// pool) by a single node; one health-loop turn discovers the fleet and
// pre-warms every workflow's ring top over the framed spec transport,
// then a closed-loop driver sweeps invocations through the gateway.
//
// Reported per level: p50/p99/throughput of the routed path, the
// warm-placement hit rate (requests landing on a node holding the
// workflow's sealed template — the tentpole acceptance number, >90%
// after pre-warm), and the rendezvous stability of the N→N+1 ring
// transition (fraction of keys keeping their node when one joins,
// bounded below by (N-1)/N). A final phase on the largest fleet proves
// per-shard admission: with a hot workflow's budget held, the gateway
// sheds it with ErrShardBudget while a bystander workflow keeps being
// served.
const (
	clusterFlows     = 4
	clusterRingKeys  = 512
	clusterShedProbe = 8
)

func Cluster(o Options) (*Result, error) {
	o = o.withDefaults()
	levels := []int{1, 2, 4}
	perFlow := 6 * o.Iterations

	rep := o.newResult("cluster", "cluster plane: rendezvous routing + warm placement across visors")
	rep.Header = []string{"Nodes", "p50 (ms)", "p99 (ms)", "req/s", "warm hit", "ring stability"}
	rep.Notes = []string{
		fmt.Sprintf("%d workflows, %d invocations each per level, closed loop with 2x nodes clients", clusterFlows, perFlow),
		"warm hit = fraction of routed requests served by a node advertising the workflow's sealed template",
		fmt.Sprintf("ring stability = keys (of %d) keeping their node when a node joins N; lower bound (N-1)/N", clusterRingKeys),
	}

	for _, n := range levels {
		lv, err := clusterLevel(o, n, perFlow)
		if err != nil {
			return nil, fmt.Errorf("cluster n=%d: %w", n, err)
		}
		if lv.stats.WarmHitRate < 0.9 {
			return nil, fmt.Errorf("cluster n=%d: warm-placement hit rate %.2f, want > 0.9 after pre-warm",
				n, lv.stats.WarmHitRate)
		}
		stability := ringStability(n, clusterRingKeys)
		if bound := float64(n-1) / float64(n); stability < bound {
			return nil, fmt.Errorf("cluster n=%d: ring stability %.3f below (N-1)/N bound %.3f",
				n, stability, bound)
		}
		key := fmt.Sprintf("n%d", n)
		rep.Snapshot.AddLatency(key, lv.sum)
		rep.Snapshot.AddGauge("warm_hit_rate_"+key, lv.stats.WarmHitRate)
		rep.Snapshot.AddGauge("ring_stability_"+key, stability)
		rep.Snapshot.AddCounter("prewarms_"+key, lv.stats.Prewarms)
		rep.gauge(metricKey("throughput_rps", key), "req/s", Informational, lv.throughput)
		rep.gauge(metricKey("warm_hit_rate", key), "ratio", HigherIsBetter, lv.stats.WarmHitRate)
		rep.gauge(metricKey("ring_stability", key), "ratio", HigherIsBetter, stability)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(n),
			rep.msCell(metricKey("p50_ms", key), LowerIsBetter, lv.sum.P50),
			rep.msCell(metricKey("p99_ms", key), LowerIsBetter, lv.sum.P99),
			fmt.Sprintf("%.0f", lv.throughput),
			fmt.Sprintf("%.0f%%", 100*lv.stats.WarmHitRate),
			fmt.Sprintf("%.3f", stability),
		})
	}

	shed, err := clusterShed(o)
	if err != nil {
		return nil, fmt.Errorf("cluster shed phase: %w", err)
	}
	rep.Snapshot.AddCounter("shard_shed", shed.shed)
	rep.gauge("shard_shed", "count", Informational, float64(shed.shed))
	rep.gauge("bystander_p99_ms_during_shed", "ms", Informational,
		float64(shed.bystanderP99)/float64(time.Millisecond))
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("shed phase: hot workflow at budget 1 shed %d request(s) with Retry-After while %d bystander invocations all served (p99 %s ms)",
			shed.shed, clusterShedProbe, ms(shed.bystanderP99)))
	return emit(o, rep), nil
}

// levelStats is one fleet size's measured outcome.
type levelStats struct {
	sum        metrics.Summary
	throughput float64
	stats      cluster.Stats
}

// clusterLevel boots n nodes, places clusterFlows workflows, runs one
// health-loop turn (discovery + pre-warm sweep) and drives the closed
// loop through the gateway.
func clusterLevel(o Options, n, perFlow int) (levelStats, error) {
	nodes, addrs, stop, err := startClusterFleet(n)
	if err != nil {
		return levelStats{}, err
	}
	defer stop()

	names := make([]string, clusterFlows)
	for i := range names {
		names[i] = fmt.Sprintf("cluster-wf-%d", i)
		if err := placeWorkflow(nodes[i%n], names[i]); err != nil {
			return levelStats{}, err
		}
	}

	g, err := gateway.New(addrs...)
	if err != nil {
		return levelStats{}, err
	}
	g.Cluster = cluster.NewRouter(cluster.Config{Clock: o.Clock})
	// Two health-loop turns: the first discovers the fleet and triggers
	// the pre-warm sweep; the second re-ranks with every template placed
	// (a sweep only re-polls the nodes it warmed).
	g.CheckHealth()
	g.CheckHealth()

	total := clusterFlows * perFlow
	rec := metrics.NewRecorderCap(total)
	work := make(chan string, total)
	for i := 0; i < perFlow; i++ {
		for _, nm := range names {
			work <- nm
		}
	}
	close(work)

	conc := 2 * n
	var wg sync.WaitGroup
	errCh := make(chan error, conc)
	levelStart := o.now()
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for nm := range work {
				start := o.now()
				if _, err := g.Invoke(nm); err != nil {
					errCh <- fmt.Errorf("invoke %s: %w", nm, err)
					return
				}
				rec.Record(o.since(start))
			}
		}()
	}
	wg.Wait()
	elapsed := o.since(levelStart)
	close(errCh)
	for err := range errCh {
		return levelStats{}, err
	}

	lv := levelStats{sum: rec.Summarize(), stats: g.Cluster.Stats()}
	if s := elapsed.Seconds(); s > 0 {
		lv.throughput = float64(total) / s
	}
	return lv, nil
}

// shedStats is the admission phase's outcome.
type shedStats struct {
	shed         int64
	bystanderP99 time.Duration
}

// clusterShed proves per-shard admission on a two-node fleet: with the
// hot workflow's single budget token held, the gateway sheds further
// hot invocations with ErrShardBudget while the bystander workflow is
// still served; releasing the token re-admits the hot workflow.
func clusterShed(o Options) (shedStats, error) {
	nodes, addrs, stop, err := startClusterFleet(2)
	if err != nil {
		return shedStats{}, err
	}
	defer stop()
	const hot, bystander = "cluster-wf-hot", "cluster-wf-cold"
	if err := placeWorkflow(nodes[0], hot); err != nil {
		return shedStats{}, err
	}
	if err := placeWorkflow(nodes[1], bystander); err != nil {
		return shedStats{}, err
	}

	g, err := gateway.New(addrs...)
	if err != nil {
		return shedStats{}, err
	}
	g.Cluster = cluster.NewRouter(cluster.Config{
		ShardBudgetFor: map[string]int{hot: 1},
		RetryAfter:     2 * time.Second,
		Clock:          o.Clock,
	})
	g.CheckHealth()
	g.CheckHealth()

	release, err := g.Cluster.Admit(hot)
	if err != nil {
		return shedStats{}, fmt.Errorf("first token must admit: %w", err)
	}
	if _, err := g.Invoke(hot); !errors.Is(err, cluster.ErrShardBudget) {
		release()
		return shedStats{}, fmt.Errorf("hot invoke at budget = %v, want ErrShardBudget", err)
	}
	lat := make([]time.Duration, 0, clusterShedProbe)
	for i := 0; i < clusterShedProbe; i++ {
		start := o.now()
		if _, err := g.Invoke(bystander); err != nil {
			release()
			return shedStats{}, fmt.Errorf("bystander starved while hot shard shed: %w", err)
		}
		lat = append(lat, o.since(start))
	}
	release()
	if _, err := g.Invoke(hot); err != nil {
		return shedStats{}, fmt.Errorf("hot invoke after release = %v, want re-admitted", err)
	}
	st := g.Cluster.Stats()
	if st.ShardShed == 0 {
		return shedStats{}, fmt.Errorf("shard shed counter is zero after a shed")
	}
	return shedStats{shed: st.ShardShed, bystanderP99: percentile(lat, 99)}, nil
}

// startClusterFleet boots n visor nodes with the full cluster surface:
// watchdog HTTP, spec server, pool manager and pre-warm builder. The
// "cluster-noop" native function backs every workflow the experiment
// registers.
func startClusterFleet(n int) (nodes []*visor.Watchdog, addrs []string, stop func(), err error) {
	stop = func() {
		for _, wd := range nodes {
			wd.Stop()
			wd.Pools.StopAll()
		}
	}
	for i := 0; i < n; i++ {
		r := visor.NewRegistry()
		r.RegisterNative("cluster-noop", func(env *asstd.Env, _ visor.FuncContext) error {
			_, err := asstd.Now(env)
			return err
		})
		wd := visor.NewWatchdog(visor.New(r))
		wd.NodeID = fmt.Sprintf("bench-node-%d", i)
		wd.OptionsFor = func(string) visor.RunOptions {
			ro := visor.DefaultRunOptions()
			ro.CostScale = 0
			ro.BufHeapSize = 1 << 20
			return ro
		}
		wd.Pools = pool.NewManager()
		wd.PoolBuilder = func(w *dag.Workflow) (pool.Spec, pool.Config, bool) {
			return pool.Spec{
				Workflow: w.Name,
				Core: core.Options{
					OnDemand:    true,
					BufHeapSize: 1 << 20,
					DiskImage:   blockdev.NewMemDisk(8 << 20),
				},
				Modules: []string{"mm", "fdtab", "stdio", "time"},
				// Clones are single-use; a tight refill keeps the pool
				// stocked under the closed loop.
			}, pool.Config{Min: 2, Max: 8, RefillEvery: 2 * time.Millisecond, Seed: 1}, true
		}
		if _, err := wd.Start("127.0.0.1:0"); err != nil {
			stop()
			return nil, nil, nil, err
		}
		if _, err := wd.StartSpecServer("127.0.0.1:0"); err != nil {
			wd.Stop()
			stop()
			return nil, nil, nil, err
		}
		nodes = append(nodes, wd)
		addrs = append(addrs, wd.Addr())
	}
	return nodes, addrs, stop, nil
}

// placeWorkflow makes wd the owner of a noop-backed workflow: registers
// the spec and seals a warm pool through the node's own pre-warm
// endpoint — the same path a deploy takes.
func placeWorkflow(wd *visor.Watchdog, name string) error {
	if err := wd.Visor().RegisterWorkflow(&dag.Workflow{
		Name: name, Functions: []dag.FuncSpec{{Name: "cluster-noop"}}}); err != nil {
		return err
	}
	body := fmt.Sprintf(`{"workflow":%q}`, name)
	resp, err := http.Post("http://"+wd.Addr()+"/pools/prewarm", "application/json",
		bytes.NewBufferString(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("self pre-warm of %s: HTTP %d", name, resp.StatusCode)
	}
	return nil
}

// ringStability computes the fraction of clusterRingKeys keys that keep
// their rendezvous owner when node n joins an n-node ring — the pure
// arithmetic behind the scale curve's stability column.
func ringStability(n, keys int) float64 {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench-node-%d", i)
	}
	grown := append(append([]string(nil), ids...), fmt.Sprintf("bench-node-%d", n))
	kept := 0
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("wf-key-%d", k)
		if cluster.Owner(key, ids, nil) == cluster.Owner(key, grown, nil) {
			kept++
		}
	}
	return float64(kept) / float64(keys)
}
