package bench

import (
	"fmt"
	"sort"
	"time"

	"alloystack/internal/metrics"
	"alloystack/internal/pool"
	"alloystack/internal/workloads"
)

// coldstartRuns is the per-arm sample count: enough for a stable p50
// and a meaningful (if coarse) p99 without making the cold arm — which
// pays the full Python bootstrap every run — take minutes.
const coldstartRuns = 8

// Coldstart contrasts cold boots against warm-pool snapshot forks for a
// Python-runtime workflow (the paper's slowest starter, §8.2): the cold
// arm pays the runtime image read plus the calibrated interpreter
// bootstrap on every invocation, while the warm arm forks a template
// that paid both once. Reported are end-to-end and boot p50/p99 per arm
// and the resulting speedup.
func Coldstart(o Options) (*Result, error) {
	o = o.withDefaults()
	size := o.size(16 << 20)
	w := workloads.FunctionChain(3, size, "python")
	v := newAlloyVisor()

	runArm := func(warm bool, p *pool.Pool) (e2e, boot []time.Duration, err error) {
		for i := 0; i < coldstartRuns; i++ {
			ro := alloyOpts(o, nil)
			img, err := workloads.BuildEmptyImage(true)
			if err != nil {
				return nil, nil, err
			}
			ro.DiskImage = img
			if warm {
				ro.Pool = p
				ro.WarmStart = true
			}
			res, err := v.RunWorkflow(w, ro)
			if err != nil {
				return nil, nil, err
			}
			if warm && !res.WarmStart {
				return nil, nil, fmt.Errorf("coldstart: warm arm run %d fell back to a cold boot", i)
			}
			e2e = append(e2e, res.E2E)
			boot = append(boot, res.ColdStart)
			if warm {
				// Clones are single-use; restock before the next run the
				// way the background maintenance loop would.
				p.Maintain(o.now())
			}
		}
		return e2e, boot, nil
	}

	coldE2E, coldBoot, err := runArm(false, nil)
	if err != nil {
		return nil, err
	}

	spec, ok := workloads.PoolSpecFor(w, size, o.CostScale)
	if !ok {
		return nil, fmt.Errorf("coldstart: workflow %s not poolable", w.Name)
	}
	p, err := pool.New(spec, pool.Config{Min: 2, Max: 4, Seed: 1})
	if err != nil {
		return nil, err
	}
	defer p.Stop()
	warmE2E, warmBoot, err := runArm(true, p)
	if err != nil {
		return nil, err
	}

	r := o.newResult("coldstart", "cold boot vs warm-pool snapshot fork (Python tier)")
	r.Header = []string{"boot", "e2e p50 (ms)", "e2e p99 (ms)", "boot p50 (ms)", "boot p99 (ms)"}
	arm := func(name string, e2e, boot []time.Duration) []string {
		return []string{name,
			r.msCell(metricKey("e2e_p50_ms", name), LowerIsBetter, percentile(e2e, 50), e2e...),
			r.msCell(metricKey("e2e_p99_ms", name), LowerIsBetter, percentile(e2e, 99)),
			r.msCell(metricKey("boot_p50_ms", name), LowerIsBetter, percentile(boot, 50), boot...),
			r.msCell(metricKey("boot_p99_ms", name), LowerIsBetter, percentile(boot, 99)),
		}
	}
	r.Rows = [][]string{
		arm("cold", coldE2E, coldBoot),
		arm("warm", warmE2E, warmBoot),
	}
	r.Snapshot.AddLatency("cold_e2e", metrics.Summarize(coldE2E))
	r.Snapshot.AddLatency("warm_e2e", metrics.Summarize(warmE2E))
	st := p.Stats()
	r.Snapshot.AddCounter("pool_hits", st.Hits)
	r.Snapshot.AddCounter("pool_misses", st.Misses)
	r.Snapshot.AddCounter("pool_forks", st.Forks)
	r.Snapshot.AddCounter("pool_evictions", st.Evictions)
	r.gauge("speedup_e2e_p50", "x", HigherIsBetter,
		ratio(percentile(coldE2E, 50), percentile(warmE2E, 50)))
	r.gauge("speedup_boot_p50", "x", HigherIsBetter,
		ratio(percentile(coldBoot, 50), percentile(warmBoot, 50)))
	r.Notes = append(r.Notes,
		fmt.Sprintf("%d runs per arm; warm pool: %d hits, %d forks, template boot %.0f ms paid once",
			coldstartRuns, st.Hits, st.Forks, st.TemplateBoot),
		fmt.Sprintf("e2e speedup p50: %.1fx, boot speedup p50: %.1fx",
			ratio(percentile(coldE2E, 50), percentile(warmE2E, 50)),
			ratio(percentile(coldBoot, 50), percentile(warmBoot, 50))))
	return emit(o, r), nil
}

// percentile returns the pth percentile (nearest-rank) of samples.
func percentile(samples []time.Duration, p int) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (p*len(s) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(s) {
		idx = len(s)
	}
	return s[idx-1]
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}
