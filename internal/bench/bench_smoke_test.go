package bench

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"
)

// smokeOpts run experiments at minimum size with injected costs nearly
// off, validating plumbing rather than ratios.
func smokeOpts() Options {
	return Options{
		Scale:      1.0 / 256,
		CostScale:  0.01,
		Iterations: 1,
	}
}

type expFunc func(Options) (*Result, error)

func runExp(t *testing.T, name string, fn expFunc) *Result {
	t.Helper()
	rep, err := fn(smokeOpts())
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if rep.ID == "" || len(rep.Header) == 0 || len(rep.Rows) == 0 {
		t.Fatalf("%s: empty report %+v", name, rep)
	}
	// Every row must have at least as many non-empty leading cells as
	// makes a meaningful table line.
	for _, row := range rep.Rows {
		if len(row) == 0 {
			t.Fatalf("%s: empty row", name)
		}
	}
	// Typed-result invariants: every experiment must fingerprint its
	// environment and emit at least one named metric.
	if rep.Env.GoVersion == "" || rep.Env.NumCPU == 0 {
		t.Fatalf("%s: env fingerprint missing: %+v", name, rep.Env)
	}
	if len(rep.Metrics) == 0 {
		t.Fatalf("%s: no typed metrics recorded", name)
	}
	for _, m := range rep.Metrics {
		if m.Name == "" || m.Unit == "" {
			t.Fatalf("%s: metric missing name/unit: %+v", name, m)
		}
	}
	// The rendered table must be a pure view over the serialisable
	// fields: marshal → unmarshal → render must be byte-identical.
	before := rep.Report().String()
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("%s: marshal: %v", name, err)
	}
	var back Result
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("%s: unmarshal: %v", name, err)
	}
	if after := back.Report().String(); after != before {
		t.Fatalf("%s: render not stable across JSON round-trip:\n--- before ---\n%s\n--- after ---\n%s",
			name, before, after)
	}
	return rep
}

func TestTable1Smoke(t *testing.T) {
	rep := runExp(t, "table1", Table1)
	if len(rep.Rows) != 9 {
		t.Fatalf("table1 rows = %d, want 9 functions", len(rep.Rows))
	}
	byName := map[string]string{}
	for _, row := range rep.Rows {
		byName[row[0]] = row[1]
	}
	// alu must be minimal (only mm) and online-compiling maximal.
	if byName["alu"] != "mm" {
		t.Fatalf("alu modules = %q, want just mm", byName["alu"])
	}
	for _, m := range []string{"mm", "fdtab", "fatfs", "socket", "stdio", "time", "mmap_file_backend"} {
		if !strings.Contains(byName["online-compiling"], m) {
			t.Fatalf("online-compiling missing %s: %q", m, byName["online-compiling"])
		}
	}
	// No probe should load everything except online-compiling.
	if strings.Contains(byName["transform-metadata"], "socket") {
		t.Fatalf("transform-metadata loaded socket: %q", byName["transform-metadata"])
	}
}

func TestFig2Smoke(t *testing.T) {
	rep := runExp(t, "fig2", Fig2)
	if len(rep.Rows) != 4 {
		t.Fatalf("fig2 rows = %d", len(rep.Rows))
	}
}

func TestFig3Smoke(t *testing.T) {
	runExp(t, "fig3", Fig3)
}

func TestFig10Smoke(t *testing.T) {
	rep := runExp(t, "fig10", Fig10)
	if len(rep.Rows) < 10 {
		t.Fatalf("fig10 rows = %d", len(rep.Rows))
	}
}

func TestFig11Smoke(t *testing.T) {
	rep := runExp(t, "fig11", Fig11)
	if len(rep.Rows) != 5 { // 4 sizes + copies row
		t.Fatalf("fig11 rows = %d", len(rep.Rows))
	}
	if len(rep.Rows[0]) != 9 {
		t.Fatalf("fig11 cols = %d", len(rep.Rows[0]))
	}
	// The trailing row reports payload copies from the data-plane
	// counters: zero under reference passing (AS, column 1), at least
	// two via the external store (OpenFaaS, last column).
	copies := rep.Rows[len(rep.Rows)-1]
	if copies[0] != "copies" || len(copies) != 9 {
		t.Fatalf("fig11 copies row malformed: %v", copies)
	}
	if copies[1] != "0" {
		t.Fatalf("AS refpass copies = %s, want 0", copies[1])
	}
	if n, err := strconv.Atoi(copies[len(copies)-1]); err != nil || n < 2 {
		t.Fatalf("OpenFaaS copies = %s, want >=2", copies[len(copies)-1])
	}
}

func TestFig12Smoke(t *testing.T) {
	rep := runExp(t, "fig12", Fig12)
	if len(rep.Rows) != 9 {
		t.Fatalf("fig12 rows = %d", len(rep.Rows))
	}
}

func TestFig13Smoke(t *testing.T) {
	rep := runExp(t, "fig13", Fig13)
	if len(rep.Rows) != 9 {
		t.Fatalf("fig13 rows = %d", len(rep.Rows))
	}
}

func TestFig14Smoke(t *testing.T) {
	rep := runExp(t, "fig14", Fig14)
	if len(rep.Rows) != 3 {
		t.Fatalf("fig14 rows = %d", len(rep.Rows))
	}
}

func TestFig15Smoke(t *testing.T) {
	rep := runExp(t, "fig15", Fig15)
	if len(rep.Rows) != 9 { // 3 workloads x 3 systems
		t.Fatalf("fig15 rows = %d", len(rep.Rows))
	}
}

func TestFig16Smoke(t *testing.T) {
	rep := runExp(t, "fig16", Fig16)
	if len(rep.Rows) != 3 {
		t.Fatalf("fig16 rows = %d", len(rep.Rows))
	}
}

func TestFig17aSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load sweep")
	}
	runExp(t, "fig17a", Fig17a)
}

func TestFig17bSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load sweep")
	}
	runExp(t, "fig17b", Fig17b)
}

func TestTable4Smoke(t *testing.T) {
	rep := runExp(t, "table4", Table4)
	if len(rep.Rows) != 4 {
		t.Fatalf("table4 rows = %d", len(rep.Rows))
	}
}

func TestEnginesSmoke(t *testing.T) {
	rep := runExp(t, "engines", Engines)
	if len(rep.Rows) != 3 {
		t.Fatalf("engines rows = %d", len(rep.Rows))
	}
}

func TestCrashResumeSmoke(t *testing.T) {
	rep := runExp(t, "crashresume", CrashResume)
	if len(rep.Rows) != 3 {
		t.Fatalf("crashresume rows = %d", len(rep.Rows))
	}
	// The resume arm must actually skip the committed prefix.
	if got := rep.Rows[2][3]; !strings.Contains(got, "skipped") || strings.Contains(got, "(0 skipped)") {
		t.Fatalf("resume arm skipped nothing: %q", got)
	}
}

func TestObservabilitySmoke(t *testing.T) {
	rep := runExp(t, "obs", Observability)
	if len(rep.Rows) != 2 {
		t.Fatalf("obs rows = %d", len(rep.Rows))
	}
	// The anomaly-capture phase must have produced a capture.
	if got := rep.Snapshot.Counters["anomaly_captures"]; got < 1 {
		t.Fatalf("obs anomaly_captures = %d, want >= 1", got)
	}
	// The overhead delta must never gate (difference of noisy numbers).
	m := rep.Metric("telemetry_overhead_pct")
	if m == nil || m.Direction != Informational {
		t.Fatalf("telemetry_overhead_pct missing or gating: %+v", m)
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{
		ID:     "x",
		Title:  "demo",
		Header: []string{"A", "LongHeader"},
		Rows:   [][]string{{"row1cellthatislong", "1"}},
		Notes:  []string{"a note"},
	}
	s := r.String()
	for _, want := range []string{"== x: demo ==", "LongHeader", "row1cellthatislong", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, s)
		}
	}
}

// A row wider than the header must render without panicking: extra
// cells get zero padding instead of indexing past the widths slice.
func TestReportRaggedRow(t *testing.T) {
	r := &Report{
		ID:     "ragged",
		Title:  "ragged row",
		Header: []string{"A", "B"},
		Rows:   [][]string{{"1", "2", "surplus", "more"}},
	}
	s := r.String()
	for _, want := range []string{"surplus", "more"} {
		if !strings.Contains(s, want) {
			t.Fatalf("ragged row dropped cell %q:\n%s", want, s)
		}
	}
}

// Metric lookup by name, and direction semantics on a real experiment.
func TestResultMetricLookup(t *testing.T) {
	rep := runExp(t, "crashresume", CrashResume)
	m := rep.Metric("p50_ms/resume")
	if m == nil {
		t.Fatal("p50_ms/resume metric missing")
	}
	if m.Unit != "ms" || m.Direction != LowerIsBetter {
		t.Fatalf("p50_ms/resume metric malformed: %+v", m)
	}
	if len(m.Samples) != crashresumeRuns {
		t.Fatalf("p50 samples = %d, want %d", len(m.Samples), crashresumeRuns)
	}
	if g := rep.Metric("resume_speedup"); g == nil || g.Direction != HigherIsBetter {
		t.Fatalf("resume_speedup gauge malformed: %+v", g)
	}
	if rep.Metric("no-such-metric") != nil {
		t.Fatal("lookup of unknown metric should be nil")
	}
}

func TestOptionsScaling(t *testing.T) {
	o := Options{Scale: 0.5}.withDefaults()
	if got := o.size(1 << 20); got != 512*1024 {
		t.Fatalf("size = %d", got)
	}
	if got := o.size(100); got != 4096 {
		t.Fatalf("minimum size = %d", got)
	}
	if o.size(1<<20)%8 != 0 {
		t.Fatal("size not 8-byte aligned")
	}
}

func TestMedian(t *testing.T) {
	if median(nil) != 0 {
		t.Fatal("median of empty != 0")
	}
	got := median([]time.Duration{3, 1, 2})
	if got != 2 {
		t.Fatalf("median = %d", got)
	}
}
