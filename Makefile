GO ?= go

PKGS       := ./...
CHAOS_PKGS := ./internal/faults ./internal/visor ./internal/gateway ./internal/kvstore ./internal/integration
RACE_PKGS  := ./internal/...

.PHONY: all build vet lint test race chaos bench bench-check bench-baseline trace-demo coldstart-demo ci

all: build

build:
	$(GO) build $(PKGS)

# vet runs stock go vet plus asvet, the repo's own analyzers (PKRU
# pairing, raw memory gating, sentinel errors.Is, wall-clock reads in
# deterministic packages, span lifetimes). `make lint` is an alias.
vet:
	$(GO) vet $(PKGS)
	$(GO) run ./cmd/asvet $(PKGS)

lint: vet

test:
	$(GO) test $(PKGS)

# race runs every internal package under the race detector; the chaos
# tests are concurrency-heavy by design, so this is where races
# surface first.
race:
	$(GO) test -race $(RACE_PKGS)

# chaos runs the long soak variants that -short (and plain `make test`
# via go's test cache) would skip.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Fault|Reconnect|Failover' $(CHAOS_PKGS)

bench:
	$(GO) run ./cmd/asbench -exp recovery

# bench-check is the CI perf regression gate: run the cheap experiment
# subset, record typed BENCH_*.json results, and diff them against the
# committed baselines with direction-aware noise bands. Exits non-zero
# when a gating metric drifts beyond the band. The journal byproducts
# land in journal-artifacts/ for CI upload.
# The CI gate doubles the default noise band (and the ms floor): shared
# runners jitter single-digit-ms measurements by far more than a quiet
# workstation, and the gate is after structural cliffs, not 30% drift.
bench-check:
	$(GO) run ./cmd/asbench -exp cheap -scale 0.01 \
		-record bench-results -compare benchmarks/baselines \
		-band 1 -floor-ms 10 \
		-artifacts journal-artifacts > bench-report.txt 2>&1; \
		st=$$?; cat bench-report.txt; exit $$st

# bench-baseline refreshes the committed baselines in place. Run it on
# a quiet machine after an intentional performance change, eyeball the
# BENCH_*.json diff, and commit it alongside the change that moved the
# numbers (see DESIGN.md §12 for etiquette).
bench-baseline:
	$(GO) run ./cmd/asbench -exp cheap -scale 0.01 -record benchmarks/baselines

# trace-demo runs a traced fan-out pipeline and emits trace.json,
# loadable at https://ui.perfetto.dev (CI uploads it as an artifact).
trace-demo:
	$(GO) run ./examples/tracedemo -o trace.json

# coldstart-demo contrasts cold boots against warm-pool snapshot forks
# for the Python tier and leaves the summary in coldstart.txt (CI
# uploads it as an artifact alongside trace.json).
coldstart-demo:
	$(GO) run ./cmd/asbench -exp coldstart -scale 0.01 | tee coldstart.txt

ci:
	./scripts/ci.sh
