GO ?= go

PKGS       := ./...
CHAOS_PKGS := ./internal/faults ./internal/visor ./internal/gateway ./internal/kvstore ./internal/integration

.PHONY: all build vet test race chaos bench ci

all: build

build:
	$(GO) build $(PKGS)

vet:
	$(GO) vet $(PKGS)

test:
	$(GO) test $(PKGS)

# race runs the fault-tolerance packages under the race detector; the
# chaos tests are concurrency-heavy by design, so this is where races
# surface first.
race:
	$(GO) test -race $(CHAOS_PKGS)

# chaos runs the long soak variants that -short (and plain `make test`
# via go's test cache) would skip.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Fault|Reconnect|Failover' $(CHAOS_PKGS)

bench:
	$(GO) run ./cmd/asbench -exp recovery

ci:
	./scripts/ci.sh
