GO ?= go

PKGS       := ./...
CHAOS_PKGS := ./internal/faults ./internal/visor ./internal/gateway ./internal/kvstore ./internal/integration
RACE_PKGS  := ./internal/...

.PHONY: all build vet lint test race chaos bench trace-demo coldstart-demo ci

all: build

build:
	$(GO) build $(PKGS)

# vet runs stock go vet plus asvet, the repo's own analyzers (PKRU
# pairing, raw memory gating, sentinel errors.Is, wall-clock reads in
# deterministic packages, span lifetimes). `make lint` is an alias.
vet:
	$(GO) vet $(PKGS)
	$(GO) run ./cmd/asvet $(PKGS)

lint: vet

test:
	$(GO) test $(PKGS)

# race runs every internal package under the race detector; the chaos
# tests are concurrency-heavy by design, so this is where races
# surface first.
race:
	$(GO) test -race $(RACE_PKGS)

# chaos runs the long soak variants that -short (and plain `make test`
# via go's test cache) would skip.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Fault|Reconnect|Failover' $(CHAOS_PKGS)

bench:
	$(GO) run ./cmd/asbench -exp recovery

# trace-demo runs a traced fan-out pipeline and emits trace.json,
# loadable at https://ui.perfetto.dev (CI uploads it as an artifact).
trace-demo:
	$(GO) run ./examples/tracedemo -o trace.json

# coldstart-demo contrasts cold boots against warm-pool snapshot forks
# for the Python tier and leaves the summary in coldstart.txt (CI
# uploads it as an artifact alongside trace.json).
coldstart-demo:
	$(GO) run ./cmd/asbench -exp coldstart -scale 0.01 | tee coldstart.txt

ci:
	./scripts/ci.sh
