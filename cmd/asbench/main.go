// Command asbench regenerates the paper's tables and figures.
//
// Usage:
//
//	asbench -exp fig10                 # one experiment
//	asbench -exp all                   # the full evaluation
//	asbench -exp cheap                 # the fast, CI-gated subset
//	asbench -exp fig12 -scale 0.25     # larger data sizes
//	asbench -exp cheap -record out/    # write BENCH_<exp>.json per experiment
//	asbench -exp cheap -record out/ -compare benchmarks/baselines
//	asbench -list                      # show available experiments
//
// Experiments print paper-style rows; DESIGN.md maps each experiment ID
// to the corresponding paper table/figure, and EXPERIMENTS.md records
// paper-vs-measured values. With -record, each experiment also emits a
// typed BENCH_<exp>.json (metrics + env fingerprint + subsystem
// snapshot); with -compare, the result is diffed against the baseline
// directory and a regression beyond the noise band fails the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"alloystack/internal/bench"
)

var experiments = map[string]struct {
	fn    func(bench.Options) (*bench.Result, error)
	about string
}{
	"table1":    {bench.Table1, "as-libos modules per serverless function"},
	"fig2":      {bench.Fig2, "startup latency across software stacks"},
	"fig3":      {bench.Fig3, "communication primitive latency"},
	"fig10":     {bench.Fig10, "cold start latency"},
	"fig11":     {bench.Fig11, "intermediate data transfer latency"},
	"fig12":     {bench.Fig12, "Rust-tier end-to-end latency"},
	"fig13":     {bench.Fig13, "C/Python end-to-end latency vs Faasm"},
	"fig14":     {bench.Fig14, "on-demand loading + reference passing ablation"},
	"fig15":     {bench.Fig15, "per-stage latency breakdown"},
	"fig16":     {bench.Fig16, "end-to-end latency on ramfs"},
	"fig17a":    {bench.Fig17a, "tail latency under load"},
	"fig17b":    {bench.Fig17b, "CPU and memory usage vs instances"},
	"table4":    {bench.Table4, "LibOS substrate throughput vs host kernel"},
	"engines":   {bench.Engines, "guest engine ablation (Wasmtime vs WAVM model)"},
	"recovery":  {bench.Recovery, "fault recovery latency (injected panic + retry)"},
	"coldstart": {bench.Coldstart, "cold boot vs warm-pool snapshot fork (p50/p99)"},
	"crashresume": {bench.CrashResume,
		"durable-run journal: crash-resume vs cold re-run, journal overhead"},
	"obs": {bench.Observability,
		"always-on telemetry overhead: histograms + tail-sampled tracing on vs off"},
	"cluster": {bench.Cluster,
		"cluster plane: rendezvous routing, warm placement and shard budgets at 1/2/4 visors"},
}

// order runs the cheap experiments first under -exp all.
var order = []string{
	"table1", "fig2", "fig10", "engines", "recovery", "coldstart", "crashresume", "obs", "cluster", "table4",
	"fig3", "fig11", "fig14", "fig16", "fig15", "fig12", "fig13", "fig17a", "fig17b",
}

// cheapSet is the CI regression-gate subset: fast to run and dominated
// by injected (deterministic) costs rather than host scheduling, so the
// noise band holds on shared runners.
var cheapSet = []string{"table1", "fig2", "fig10", "recovery", "coldstart", "crashresume", "obs", "cluster"}

func main() {
	exp := flag.String("exp", "", "experiment id, 'all', or 'cheap' (the CI subset)")
	list := flag.Bool("list", false, "list experiments")
	scale := flag.Float64("scale", 1.0/16, "data-size scale relative to the paper")
	costScale := flag.Float64("cost-scale", 1.0, "injected platform-cost scale (1.0 = calibrated)")
	iters := flag.Int("iters", 1, "iterations per configuration (median reported)")
	artifacts := flag.String("artifacts", "", "directory to keep experiment byproducts (journals) for CI upload")
	record := flag.String("record", "", "directory to write BENCH_<exp>.json typed results into")
	compare := flag.String("compare", "", "baseline directory of BENCH_<exp>.json files to gate against")
	band := flag.Float64("band", 0, "relative noise band for -compare (0 = default 0.5)")
	floorMS := flag.Float64("floor-ms", 0, "absolute noise floor in ms for -compare (0 = default 5, negative disables)")
	flag.Parse()

	if *list || *exp == "" {
		names := make([]string, 0, len(experiments))
		for n := range experiments {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("experiments:")
		for _, n := range names {
			fmt.Printf("  %-8s %s\n", n, experiments[n].about)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opts := bench.Options{
		Scale:      *scale,
		CostScale:  *costScale,
		Iterations: *iters,
		Out:        os.Stdout,
	}
	opts.ArtifactsDir = *artifacts
	cmpOpts := bench.CompareOptions{Band: *band, FloorMS: *floorMS}

	// run executes one experiment, records and compares as asked, and
	// returns whether the experiment errored and whether it regressed.
	run := func(name string) (failed, regressed bool) {
		e, ok := experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "asbench: unknown experiment %q (use -list)\n", name)
			return true, false
		}
		start := time.Now()
		res, err := e.fn(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asbench: %s: %v\n", name, err)
			return true, false
		}
		fmt.Printf("[%s completed in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
		if *record != "" {
			if _, err := bench.WriteResult(*record, res); err != nil {
				fmt.Fprintf(os.Stderr, "asbench: %s: record: %v\n", name, err)
				return true, false
			}
		}
		if *compare != "" {
			c, err := bench.CompareAgainstDir(res, *compare, cmpOpts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "asbench: %s: compare: %v\n", name, err)
				return true, false
			}
			fmt.Printf("compare: %s\n\n", c)
			for _, d := range c.Regressions() {
				annotate(name, d)
				regressed = true
			}
		}
		return false, regressed
	}

	names := []string{*exp}
	switch *exp {
	case "all":
		names = order
	case "cheap":
		names = cheapSet
	}

	// Keep going when one experiment fails so a broken table does not
	// mask results (or regressions) from the rest; aggregate the exit.
	anyFailed, anyRegressed := false, false
	for _, name := range names {
		failed, regressed := run(name)
		anyFailed = anyFailed || failed
		anyRegressed = anyRegressed || regressed
	}
	switch {
	case anyFailed:
		os.Exit(1)
	case anyRegressed:
		fmt.Fprintln(os.Stderr, "asbench: performance regression beyond noise band (see compare lines above)")
		os.Exit(3)
	}
}

// annotate emits a GitHub Actions error annotation for a regressed
// metric when running under Actions, so the breach shows up on the PR
// without digging through logs.
func annotate(exp string, d bench.MetricDelta) {
	if os.Getenv("GITHUB_ACTIONS") != "true" {
		return
	}
	fmt.Printf("::error title=bench regression in %s::%s\n", exp, d)
}
