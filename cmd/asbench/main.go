// Command asbench regenerates the paper's tables and figures.
//
// Usage:
//
//	asbench -exp fig10                 # one experiment
//	asbench -exp all                   # the full evaluation
//	asbench -exp fig12 -scale 0.25     # larger data sizes
//	asbench -list                      # show available experiments
//
// Experiments print paper-style rows; DESIGN.md maps each experiment ID
// to the corresponding paper table/figure, and EXPERIMENTS.md records
// paper-vs-measured values.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"alloystack/internal/bench"
)

var experiments = map[string]struct {
	fn    func(bench.Options) (*bench.Report, error)
	about string
}{
	"table1":    {bench.Table1, "as-libos modules per serverless function"},
	"fig2":      {bench.Fig2, "startup latency across software stacks"},
	"fig3":      {bench.Fig3, "communication primitive latency"},
	"fig10":     {bench.Fig10, "cold start latency"},
	"fig11":     {bench.Fig11, "intermediate data transfer latency"},
	"fig12":     {bench.Fig12, "Rust-tier end-to-end latency"},
	"fig13":     {bench.Fig13, "C/Python end-to-end latency vs Faasm"},
	"fig14":     {bench.Fig14, "on-demand loading + reference passing ablation"},
	"fig15":     {bench.Fig15, "per-stage latency breakdown"},
	"fig16":     {bench.Fig16, "end-to-end latency on ramfs"},
	"fig17a":    {bench.Fig17a, "tail latency under load"},
	"fig17b":    {bench.Fig17b, "CPU and memory usage vs instances"},
	"table4":    {bench.Table4, "LibOS substrate throughput vs host kernel"},
	"engines":   {bench.Engines, "guest engine ablation (Wasmtime vs WAVM model)"},
	"recovery":  {bench.Recovery, "fault recovery latency (injected panic + retry)"},
	"coldstart": {bench.Coldstart, "cold boot vs warm-pool snapshot fork (p50/p99)"},
	"crashresume": {bench.CrashResume,
		"durable-run journal: crash-resume vs cold re-run, journal overhead"},
}

// order runs the cheap experiments first under -exp all.
var order = []string{
	"table1", "fig2", "fig10", "engines", "recovery", "coldstart", "crashresume", "table4", "fig3",
	"fig11", "fig14", "fig16", "fig15", "fig12", "fig13", "fig17a", "fig17b",
}

func main() {
	exp := flag.String("exp", "", "experiment id, or 'all'")
	list := flag.Bool("list", false, "list experiments")
	scale := flag.Float64("scale", 1.0/16, "data-size scale relative to the paper")
	costScale := flag.Float64("cost-scale", 1.0, "injected platform-cost scale (1.0 = calibrated)")
	iters := flag.Int("iters", 1, "iterations per configuration (median reported)")
	artifacts := flag.String("artifacts", "", "directory to keep experiment byproducts (journals) for CI upload")
	flag.Parse()

	if *list || *exp == "" {
		names := make([]string, 0, len(experiments))
		for n := range experiments {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("experiments:")
		for _, n := range names {
			fmt.Printf("  %-8s %s\n", n, experiments[n].about)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opts := bench.Options{
		Scale:      *scale,
		CostScale:  *costScale,
		Iterations: *iters,
		Out:        os.Stdout,
	}
	opts.ArtifactsDir = *artifacts

	run := func(name string) error {
		e, ok := experiments[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", name)
		}
		start := time.Now()
		if _, err := e.fn(opts); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("[%s completed in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if *exp == "all" {
		for _, name := range order {
			if err := run(name); err != nil {
				fmt.Fprintln(os.Stderr, "asbench:", err)
				os.Exit(1)
			}
		}
		return
	}
	if err := run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "asbench:", err)
		os.Exit(1)
	}
}
