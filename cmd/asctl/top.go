package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"alloystack/internal/journal"
	"alloystack/internal/metrics"
	"alloystack/internal/pool"
)

// cmdTop is the live terminal dashboard: it polls a node's /metrics,
// /pools and /runs endpoints and renders per-workflow latency quantiles
// (computed client-side from the histogram buckets), SLO burn rates,
// admission and journal counters. -once prints a single frame and
// exits, which is what scripts and tests want.
func cmdTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	node := fs.String("node", "127.0.0.1:8080", "asvisor address")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	once := fs.Bool("once", false, "print one frame and exit")
	fs.Parse(args)

	for {
		frame, err := topFrame(*node)
		if err != nil {
			fatal("top: %v", err)
		}
		if !*once {
			// Clear screen and home the cursor between refreshes.
			fmt.Print("\x1b[2J\x1b[H")
		}
		fmt.Print(frame)
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// topFrame fetches and renders one dashboard frame.
func topFrame(node string) (string, error) {
	samples, err := fetchMetrics(node)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "asvisor %s — %s\n\n", node, time.Now().Format("15:04:05"))
	renderNodeCounters(&b, samples)
	renderWorkflows(&b, samples)
	renderPools(&b, node)
	renderRuns(&b, node)
	return b.String(), nil
}

func fetchMetrics(node string) ([]metrics.PromSample, error) {
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", node))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("/metrics: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return metrics.ParseProm(resp.Body)
}

// metricValue returns the value of the first sample matching name and
// the label filter, with ok=false when absent.
func metricValue(samples []metrics.PromSample, name string, match map[string]string) (float64, bool) {
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range match {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s.Value, true
		}
	}
	return 0, false
}

func renderNodeCounters(b *strings.Builder, samples []metrics.PromSample) {
	row := func(label, name string) {
		if v, ok := metricValue(samples, name, nil); ok {
			fmt.Fprintf(b, "  %-12s %g\n", label, v)
		}
	}
	fmt.Fprintf(b, "node\n")
	row("completed", "alloystack_watchdog_invocations_total")
	row("failures", "alloystack_watchdog_failures_total")
	row("inflight", "alloystack_watchdog_inflight")
	row("shed", "alloystack_watchdog_shed_total")
	row("backlog", "alloystack_sched_backlog")
	row("retries", "alloystack_watchdog_retries_total")
	row("journal-appends", "alloystack_journal_appends_total")
	row("traces-kept", "alloystack_traces_retained_total")
	row("captures", "alloystack_anomaly_captures_total")
	// Node-wide latency from the watchdog's own histogram.
	if buckets := metrics.BucketsOf(samples, "alloystack_watchdog_invoke_latency_seconds", nil); len(buckets) > 0 {
		fmt.Fprintf(b, "  %-12s p50 %s  p99 %s\n", "latency",
			fmtSeconds(metrics.BucketQuantile(0.50, buckets)),
			fmtSeconds(metrics.BucketQuantile(0.99, buckets)))
	}
	fmt.Fprintln(b)
}

// renderWorkflows renders the per-workflow table from the telemetry
// plane's histogram family and SLO gauges.
func renderWorkflows(b *strings.Builder, samples []metrics.PromSample) {
	wfs := map[string]bool{}
	for _, s := range samples {
		if s.Name == "alloystack_workflow_e2e_seconds_count" && s.Labels["workflow"] != "" {
			wfs[s.Labels["workflow"]] = true
		}
	}
	if len(wfs) == 0 {
		fmt.Fprintf(b, "workflows: none observed yet\n\n")
		return
	}
	names := make([]string, 0, len(wfs))
	for wf := range wfs {
		names = append(names, wf)
	}
	sort.Strings(names)
	fmt.Fprintf(b, "%-20s %8s %10s %10s %7s %7s %5s\n",
		"WORKFLOW", "COUNT", "P50", "P99", "BURN-S", "BURN-L", "SLO")
	for _, wf := range names {
		match := map[string]string{"workflow": wf}
		count, _ := metricValue(samples, "alloystack_workflow_e2e_seconds_count", match)
		buckets := metrics.BucketsOf(samples, "alloystack_workflow_e2e_seconds", match)
		p50 := metrics.BucketQuantile(0.50, buckets)
		p99 := metrics.BucketQuantile(0.99, buckets)
		burnS, hasS := metricValue(samples, "alloystack_slo_burn_rate",
			map[string]string{"workflow": wf, "window": "short"})
		burnL, _ := metricValue(samples, "alloystack_slo_burn_rate",
			map[string]string{"workflow": wf, "window": "long"})
		breached, _ := metricValue(samples, "alloystack_slo_breached", match)
		slo := "-"
		if hasS {
			slo = "ok"
			if breached >= 1 {
				slo = "BURN"
			}
		}
		burnSs, burnLs := "-", "-"
		if hasS {
			burnSs = fmt.Sprintf("%.2f", burnS)
			burnLs = fmt.Sprintf("%.2f", burnL)
		}
		fmt.Fprintf(b, "%-20s %8.0f %10s %10s %7s %7s %5s\n",
			wf, count, fmtSeconds(p50), fmtSeconds(p99), burnSs, burnLs, slo)
	}
	fmt.Fprintln(b)
}

func renderPools(b *strings.Builder, node string) {
	resp, err := http.Get(fmt.Sprintf("http://%s/pools", node))
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var stats []pool.Stats
	if decodeJSONBody(resp.Body, &stats) != nil || len(stats) == 0 {
		return
	}
	fmt.Fprintf(b, "%-20s %6s %6s %6s %6s\n", "POOL", "WARM", "TARGET", "HITS", "MISS")
	for _, s := range stats {
		fmt.Fprintf(b, "%-20s %6d %6d %6d %6d\n", s.Workflow, s.Warm, s.Target, s.Hits, s.Misses)
	}
	fmt.Fprintln(b)
}

func renderRuns(b *strings.Builder, node string) {
	resp, err := http.Get(fmt.Sprintf("http://%s/runs", node))
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var runs []journal.Summary
	if decodeJSONBody(resp.Body, &runs) != nil || len(runs) == 0 {
		return
	}
	resumable := 0
	for _, s := range runs {
		if !s.Sealed {
			resumable++
		}
	}
	fmt.Fprintf(b, "runs: %d journaled, %d resumable\n", len(runs), resumable)
}

func decodeJSONBody(r io.Reader, v any) error {
	data, err := io.ReadAll(io.LimitReader(r, 1<<20))
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// fmtSeconds renders a seconds value with a readable unit.
func fmtSeconds(s float64) string {
	d := time.Duration(s * float64(time.Second))
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	}
	return fmt.Sprintf("%.2fs", d.Seconds())
}
