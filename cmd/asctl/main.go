// Command asctl is the AlloyStack CLI: validate and describe workflow
// configurations, and invoke workflows on a running asvisor node.
//
// Usage:
//
//	asctl validate workflow.json
//	asctl describe workflow.json
//	asctl scan workflow.json
//	asctl invoke -node 127.0.0.1:8080 word-count
//	asctl trace -node 127.0.0.1:8080 -o trace.json word-count
//	asctl perf -dir bench-results -baseline benchmarks/baselines
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"alloystack/internal/asvm"
	"alloystack/internal/bench"
	"alloystack/internal/dag"
	"alloystack/internal/faults"
	"alloystack/internal/gateway"
	"alloystack/internal/journal"
	"alloystack/internal/pool"
	"alloystack/internal/scan"
	"alloystack/internal/visor"
	"alloystack/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "validate":
		cmdValidate(os.Args[2:])
	case "describe":
		cmdDescribe(os.Args[2:])
	case "scan":
		cmdScan(os.Args[2:])
	case "invoke":
		cmdInvoke(os.Args[2:])
	case "trace":
		cmdTrace(os.Args[2:])
	case "top":
		cmdTop(os.Args[2:])
	case "pools":
		cmdPools(os.Args[2:])
	case "cluster":
		cmdCluster(os.Args[2:])
	case "runs":
		cmdRuns(os.Args[2:])
	case "resume":
		cmdResume(os.Args[2:])
	case "perf":
		cmdPerf(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  asctl validate <workflow.json>   check a workflow configuration
  asctl describe <workflow.json>   print stages and instance counts
  asctl scan <workflow.json>       statically verify the workflow's guest images
  asctl invoke [-node host:port] [-timeout 30s] [-retries 0] <workflow>   invoke on a running asvisor
  asctl trace [-node host:port] [-o trace.json] <workflow>   invoke with tracing; write Chrome/Perfetto trace
  asctl trace [-node host:port] [-o trace.json] -id <trace-id>   fetch a tail-sampled trace retained by the node
  asctl top [-node host:port] [-interval 2s] [-once]   live dashboard: latency quantiles, SLO burn, pools, runs
  asctl pools [-node host:port]   show the node's warm-instance pools
  asctl cluster [-node host:port]   show the gateway's membership view, rendezvous rings and warm-hit rate
  asctl runs [-node host:port]    list journaled runs and their committed progress
  asctl resume [-node host:port] <run-id>   resume an unsealed run from its journal
  asctl perf [-dir bench-results] [-baseline benchmarks/baselines]   summarise recorded BENCH_*.json results`)
	os.Exit(2)
}

func loadWorkflow(path string) *dag.Workflow {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal("read %s: %v", path, err)
	}
	w, err := dag.Parse(data)
	if err != nil {
		fatal("parse %s: %v", path, err)
	}
	return w
}

func cmdValidate(args []string) {
	if len(args) != 1 {
		usage()
	}
	w := loadWorkflow(args[0])
	fmt.Printf("workflow %q: OK (%d functions, %d instances)\n",
		w.Name, len(w.Functions), w.TotalInstances())
}

func cmdDescribe(args []string) {
	if len(args) != 1 {
		usage()
	}
	w := loadWorkflow(args[0])
	stages, err := w.Stages()
	if err != nil {
		fatal("stages: %v", err)
	}
	fmt.Printf("workflow %q: %d functions in %d stages\n", w.Name, len(w.Functions), len(stages))
	for i, stage := range stages {
		var parts []string
		for _, f := range stage {
			lang := f.Language
			if lang == "" {
				lang = "native"
			}
			parts = append(parts, fmt.Sprintf("%s[x%d,%s]", f.Name, f.InstancesOf(), lang))
		}
		fmt.Printf("  stage %d: %s\n", i, strings.Join(parts, " "))
	}
	// Each dependency edge moves intermediate data through one of the
	// data plane's transports; the consumer's params (or the default
	// run configuration) pick which.
	opts := visor.DefaultRunOptions()
	printed := false
	for _, stage := range stages {
		for _, f := range stage {
			if len(f.DependsOn) == 0 {
				continue
			}
			if !printed {
				fmt.Println("  edges:")
				printed = true
			}
			kind := visor.EdgeTransfer(f.Params, opts)
			for _, dep := range f.DependsOn {
				fmt.Printf("    %s -> %s: %s\n", dep, f.Name, kind)
			}
		}
	}
}

// cmdScan runs the static ASVM verifier over every guest image the
// workflow would stage — the same check as-visor applies at admission —
// and prints the per-guest verdict: CFG blocks, proven worst-case stack
// depth and the host imports the code can reach.
func cmdScan(args []string) {
	if len(args) != 1 {
		usage()
	}
	w := loadWorkflow(args[0])
	allow := scan.WASIAllowlist()
	rejected := 0
	seen := make(map[*asvm.Program]bool)
	for _, f := range w.Functions {
		ctx := visor.FuncContext{
			Workflow:  w.Name,
			Function:  f.Name,
			Instances: f.InstancesOf(),
			Params:    f.Params,
		}
		prog, _, err := workloads.GuestProgram(f.Name, ctx)
		if err != nil {
			lang := f.Language
			if lang == "" {
				lang = "native"
			}
			fmt.Printf("%-12s %-8s no guest image (%s tier)\n", f.Name, lang, lang)
			continue
		}
		if seen[prog] {
			fmt.Printf("%-12s %-8s OK (image already verified above)\n", f.Name, f.Language)
			continue
		}
		seen[prog] = true
		rep, err := scan.Verify(prog, allow)
		if err != nil {
			fmt.Printf("%-12s %-8s REJECTED: %v\n", f.Name, f.Language, err)
			rejected++
			continue
		}
		fmt.Printf("%-12s %-8s OK  funcs=%d max-stack=%d\n",
			f.Name, f.Language, len(rep.Funcs), rep.MaxStack())
		for _, fr := range rep.Funcs {
			imports := "-"
			if len(fr.Imports) > 0 {
				imports = strings.Join(fr.Imports, ",")
			}
			fmt.Printf("    %-10s blocks=%-3d max-stack=%-3d imports=%s\n",
				fr.Name, fr.Blocks, fr.MaxStack, imports)
		}
	}
	if rejected > 0 {
		fatal("%d guest image(s) rejected", rejected)
	}
}

func cmdInvoke(args []string) {
	fs := flag.NewFlagSet("invoke", flag.ExitOnError)
	node := fs.String("node", "127.0.0.1:8080", "asvisor address")
	timeout := fs.Duration("timeout", 0, "overall invocation timeout (0 = none)")
	retries := fs.Int("retries", 0, "retry the HTTP call on transport error or 5xx, with backoff")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	name := fs.Arg(0)
	url := fmt.Sprintf("http://%s/invoke/%s", *node, name)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	policy := faults.DefaultRetryPolicy()
	policy.MaxRetries = *retries

	var (
		resp *http.Response
		err  error
	)
	start := time.Now()
	for attempt := 0; ; attempt++ {
		var req *http.Request
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
		if err != nil {
			fatal("invoke: %v", err)
		}
		resp, err = http.DefaultClient.Do(req)
		// 5xx means the node (or the workflow) failed; 4xx is a caller
		// mistake and retrying would not change the answer.
		if err == nil && resp.StatusCode < 500 {
			break
		}
		if !policy.Allow(attempt, time.Since(start)) {
			break
		}
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if serr := policy.Sleep(ctx, attempt); serr != nil {
			break
		}
		fmt.Fprintf(os.Stderr, "asctl: retrying %s (attempt %d)\n", name, attempt+2)
	}
	if err != nil {
		fatal("invoke: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fmt.Printf("%s\n", body)
	if resp.StatusCode != http.StatusOK {
		os.Exit(1)
	}
}

// cmdTrace invokes a workflow with ?trace=1 and writes the returned
// Chrome trace_event JSON to a file loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
func cmdTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	node := fs.String("node", "127.0.0.1:8080", "asvisor address")
	out := fs.String("o", "trace.json", "output file for the Chrome trace")
	timeout := fs.Duration("timeout", 0, "overall invocation timeout (0 = none)")
	id := fs.String("id", "", "fetch a retained trace by ID from /traces/ instead of invoking")
	fs.Parse(args)
	if *id != "" {
		fetchRetainedTrace(*node, *id, *out)
		return
	}
	if fs.NArg() != 1 {
		usage()
	}
	name := fs.Arg(0)
	url := fmt.Sprintf("http://%s/invoke/%s?trace=1", *node, name)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
	if err != nil {
		fatal("trace: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatal("trace: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)

	var r visor.InvokeResponse
	if err := json.Unmarshal(body, &r); err != nil {
		fatal("trace: decode response: %v (body: %s)", err, body)
	}
	if r.Error != "" {
		fmt.Fprintf(os.Stderr, "asctl: workflow error: %s\n", r.Error)
	}
	if len(r.Trace) == 0 {
		fatal("trace: node returned no trace (old asvisor?)")
	}
	if err := os.WriteFile(*out, r.Trace, 0o644); err != nil {
		fatal("trace: write %s: %v", *out, err)
	}
	fmt.Printf("workflow %q: e2e %.2fms cold-start %.2fms trace %s\n",
		r.Workflow, r.E2EMillis, r.ColdStartMs, r.TraceID)
	if r.Transfer != "" {
		fmt.Println("transfer:")
		for _, line := range strings.Split(r.Transfer, "\n") {
			fmt.Printf("  %s\n", line)
		}
	}
	fmt.Printf("wrote %s — load it at https://ui.perfetto.dev or chrome://tracing\n", *out)
	if resp.StatusCode != http.StatusOK {
		os.Exit(1)
	}
}

// fetchRetainedTrace downloads a tail-sampled trace the node retained
// (GET /traces/{id}) — the resolution path for exemplar trace IDs seen
// on /metrics or in invoke responses.
func fetchRetainedTrace(node, id, out string) {
	resp, err := http.Get(fmt.Sprintf("http://%s/traces/%s", node, id))
	if err != nil {
		fatal("trace: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		fatal("trace %s: %s (%s) — the sampler may have dropped or evicted it", id,
			strings.TrimSpace(string(body)), resp.Status)
	}
	if err := os.WriteFile(out, body, 0o644); err != nil {
		fatal("trace: write %s: %v", out, err)
	}
	fmt.Printf("wrote %s — load it at https://ui.perfetto.dev or chrome://tracing\n", out)
}

// cmdPools queries /pools and prints one row per warm pool: stock,
// autoscaler target, hit/miss counters and the template boot cost the
// pool amortises.
func cmdPools(args []string) {
	fs := flag.NewFlagSet("pools", flag.ExitOnError)
	node := fs.String("node", "127.0.0.1:8080", "asvisor address")
	fs.Parse(args)
	resp, err := http.Get(fmt.Sprintf("http://%s/pools", *node))
	if err != nil {
		fatal("pools: %v", err)
	}
	defer resp.Body.Close()
	var stats []pool.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		fatal("pools: decode: %v", err)
	}
	if len(stats) == 0 {
		fmt.Println("no warm pools (start asvisor with -warm-pools)")
		return
	}
	fmt.Printf("%-20s %6s %6s %9s %6s %6s %6s %6s %14s\n",
		"WORKFLOW", "WARM", "TARGET", "MIN/MAX", "HITS", "MISS", "FORKS", "EVICT", "TEMPLATE-BOOT")
	for _, s := range stats {
		fmt.Printf("%-20s %6d %6d %5d/%-3d %6d %6d %6d %6d %12.0fms\n",
			s.Workflow, s.Warm, s.Target, s.Min, s.Max,
			s.Hits, s.Misses, s.Forks, s.Evictions, s.TemplateBoot)
	}
}

// cmdCluster queries a gateway's /cluster view and prints the
// membership table, the router's warm-placement counters and each
// workflow's rendezvous ring (top choice first, warm holders starred).
func cmdCluster(args []string) {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	node := fs.String("node", "127.0.0.1:8080", "gateway address")
	fs.Parse(args)
	resp, err := http.Get(fmt.Sprintf("http://%s/cluster", *node))
	if err != nil {
		fatal("cluster: %v", err)
	}
	defer resp.Body.Close()
	var view gateway.ClusterView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		fatal("cluster: decode: %v", err)
	}
	if !view.Enabled {
		fmt.Println("cluster routing not enabled on this gateway (start asvisor -gateway without -no-cluster)")
		return
	}
	s := view.Stats
	fmt.Printf("nodes %d/%d alive  warm-hit %.0f%% (%d hits, %d misses)  prewarms %d  shard-shed %d\n",
		s.NodesAlive, s.Nodes, 100*s.WarmHitRate, s.WarmHits, s.WarmMisses, s.Prewarms, s.ShardShed)
	fmt.Printf("%-22s %-16s %-6s %5s %9s %9s %5s  %s\n",
		"MEMBER", "ID", "ALIVE", "AGE", "CAPACITY", "INFLIGHT", "WARM", "WORKFLOWS")
	for _, m := range view.Members {
		alive := "yes"
		if !m.Alive {
			alive = "no"
		}
		if m.Info.Degraded {
			alive += "*"
		}
		capacity := "inf"
		if m.Info.Capacity > 0 {
			capacity = fmt.Sprint(m.Info.Capacity)
		}
		fmt.Printf("%-22s %-16s %-6s %4.0fms %9s %9d %5d  %s\n",
			m.Addr, m.Info.ID, alive, m.AgeMs, capacity, m.Info.Inflight,
			len(m.Info.Warm), strings.Join(m.Info.Workflows, ","))
	}
	if len(view.Rings) == 0 {
		return
	}
	fmt.Println("rings (top choice first; * = warm template held):")
	workflows := make([]string, 0, len(view.Rings))
	for wf := range view.Rings {
		workflows = append(workflows, wf)
	}
	sort.Strings(workflows)
	for _, wf := range workflows {
		var parts []string
		for _, c := range view.Rings[wf] {
			star := ""
			if c.Warm {
				star = "*"
			}
			parts = append(parts, fmt.Sprintf("%s%s(w=%.2f)", c.ID, star, c.Weight))
		}
		fmt.Printf("  %-20s %s\n", wf, strings.Join(parts, " > "))
	}
}

// cmdRuns queries /runs and prints one row per journaled run: the
// committed-stage prefix a resume would skip, spilled barrier payloads,
// compensations executed, and whether the journal is sealed (a sealed
// run is finished — resume refuses it).
func cmdRuns(args []string) {
	fs := flag.NewFlagSet("runs", flag.ExitOnError)
	node := fs.String("node", "127.0.0.1:8080", "asvisor address")
	fs.Parse(args)
	resp, err := http.Get(fmt.Sprintf("http://%s/runs", *node))
	if err != nil {
		fatal("runs: %v", err)
	}
	defer resp.Body.Close()
	var runs []journal.Summary
	if err := json.NewDecoder(resp.Body).Decode(&runs); err != nil {
		fatal("runs: decode: %v", err)
	}
	if len(runs) == 0 {
		fmt.Println("no journaled runs (start asvisor with -journal)")
		return
	}
	fmt.Printf("%-24s %-20s %9s %7s %5s %7s %7s %-12s\n",
		"RUN", "WORKFLOW", "COMMITTED", "SPILLED", "COMPS", "RESUMES", "BYTES", "STATE")
	for _, s := range runs {
		state := "resumable"
		switch {
		case s.Sealed && s.Verdict != "":
			state = "sealed:" + s.Verdict
		case s.Sealed:
			state = "sealed"
		case s.Failed:
			state = "failed"
		}
		fmt.Printf("%-24s %-20s %6d/%-2d %7d %5d %7d %7d %-12s\n",
			s.ID, s.Workflow, s.Committed, s.Stages,
			s.Spilled, s.Comps, s.Resumes, s.Bytes, state)
	}
}

// cmdResume asks the node to resume one unsealed run from its journal.
// The node replays the journal, re-admits the run through the scheduler
// and continues from the last committed barrier; committed stages are
// skipped and their spilled outputs re-imported.
func cmdResume(args []string) {
	fs := flag.NewFlagSet("resume", flag.ExitOnError)
	node := fs.String("node", "127.0.0.1:8080", "asvisor address")
	timeout := fs.Duration("timeout", 0, "overall resume timeout (0 = none)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	id := fs.Arg(0)
	url := fmt.Sprintf("http://%s/runs/%s/resume", *node, id)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
	if err != nil {
		fatal("resume: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatal("resume: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var r visor.InvokeResponse
	if err := json.Unmarshal(body, &r); err != nil {
		// Non-JSON error body (404, 409, ...): print it verbatim.
		fatal("resume: %s (%s)", strings.TrimSpace(string(body)), resp.Status)
	}
	if r.Error != "" {
		fatal("resume %s: %s", id, r.Error)
	}
	fmt.Printf("run %s (%s): resumed, %d stage(s) skipped, e2e %.2fms verdict %q\n",
		id, r.Workflow, r.StagesSkipped, r.E2EMillis, r.Verdict)
	if resp.StatusCode != http.StatusOK {
		os.Exit(1)
	}
}

// cmdPerf summarises recorded BENCH_*.json files: one row per
// experiment with its environment fingerprint and gating-metric count.
// With -baseline it also runs the comparator and exits non-zero when
// any experiment regressed beyond the noise band — the offline twin of
// `asbench -compare`, usable on CI artifacts after the fact.
func cmdPerf(args []string) {
	fs := flag.NewFlagSet("perf", flag.ExitOnError)
	dir := fs.String("dir", "bench-results", "directory of recorded BENCH_*.json files")
	baseline := fs.String("baseline", "", "baseline directory to compare against (empty = just summarise)")
	band := fs.Float64("band", 0, "relative noise band (0 = default 0.5)")
	floorMS := fs.Float64("floor-ms", 0, "absolute noise floor in ms (0 = default 5, negative disables)")
	fs.Parse(args)

	paths, err := filepath.Glob(filepath.Join(*dir, "BENCH_*.json"))
	if err != nil {
		fatal("perf: %v", err)
	}
	if len(paths) == 0 {
		fatal("perf: no BENCH_*.json files in %s (run asbench -record %s first)", *dir, *dir)
	}
	sort.Strings(paths)

	cmpOpts := bench.CompareOptions{Band: *band, FloorMS: *floorMS}
	fmt.Printf("%-12s %-10s %-13s %7s %7s %-20s\n",
		"EXPERIMENT", "GO", "GIT", "METRICS", "GATING", "RECORDED")
	regressed := false
	var comparisons []*bench.Comparison
	for _, path := range paths {
		r, err := bench.ReadResult(path)
		if err != nil {
			fatal("perf: %v", err)
		}
		gating := 0
		for _, m := range r.Metrics {
			if m.Direction != bench.Informational {
				gating++
			}
		}
		sha := r.Env.GitSHA
		if sha == "" {
			sha = "-"
		}
		fmt.Printf("%-12s %-10s %-13s %7d %7d %-20s\n",
			r.ID, r.Env.GoVersion, sha, len(r.Metrics), gating, r.Env.RecordedAt)
		if *baseline != "" {
			c, err := bench.CompareAgainstDir(r, *baseline, cmpOpts)
			if err != nil {
				fatal("perf: compare %s: %v", r.ID, err)
			}
			comparisons = append(comparisons, c)
			if len(c.Regressions()) > 0 {
				regressed = true
			}
		}
	}
	for _, c := range comparisons {
		fmt.Println(c)
	}
	if regressed {
		fatal("perf: regression beyond noise band")
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "asctl: "+format+"\n", args...)
	os.Exit(1)
}
