// Command asvisor runs an AlloyStack node: the watchdog HTTP server plus
// the built-in benchmark function registry, executing workflows described
// by JSON configuration files.
//
// Usage:
//
//	asvisor -listen 127.0.0.1:8080 -workflows ./configs
//	curl -X POST http://127.0.0.1:8080/invoke/word-count
//
// Each JSON file in -workflows registers one workflow (see internal/dag
// for the schema); the built-in registry provides the paper's benchmark
// functions in native, C and Python tiers. Input-reading workflows get a
// fresh FAT disk image with synthetic input data per invocation, sized
// by -input-size.
//
// Chaos mode injects deterministic faults into every invocation:
//
//	asvisor -chaos 'panic=wc-map:2,kvdrop=5' -chaos-seed 7 -max-retries 3
//
// Gateway mode turns the binary into the cluster front end instead of a
// node: it polls each backend's /cluster advertisement, routes by damped
// rendezvous hash, and pre-warms the ring's top choice per workflow:
//
//	asvisor -gateway 127.0.0.1:8081,127.0.0.1:8082,127.0.0.1:8083 -listen 127.0.0.1:8080
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"alloystack/internal/cluster"
	"alloystack/internal/dag"
	"alloystack/internal/faults"
	"alloystack/internal/gateway"
	"alloystack/internal/journal"
	"alloystack/internal/metrics"
	"alloystack/internal/pool"
	"alloystack/internal/sched"
	"alloystack/internal/visor"
	"alloystack/internal/workloads"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "watchdog (or gateway) listen address")
	gw := flag.String("gateway", "", "run as the cluster gateway over this comma-separated backend list instead of a node")
	noCluster := flag.Bool("no-cluster", false, "gateway mode: disable rendezvous routing (plain failover list)")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "gateway mode: health/membership poll interval")
	shardBudget := flag.Int("shard-budget", 0, "gateway mode: per-workflow concurrent token budget (0 = unlimited)")
	nodeID := flag.String("node-id", "", "stable node identity advertised on /cluster (default: the listen address)")
	specListen := flag.String("spec-listen", "127.0.0.1:0", "spec-server listen address for peer pre-warm pulls (empty = off)")
	dir := flag.String("workflows", "", "directory of workflow JSON configs")
	inputSize := flag.Int64("input-size", 4<<20, "synthetic input size for file-reading workflows")
	costScale := flag.Float64("cost-scale", 1.0, "injected platform-cost scale")
	chaos := flag.String("chaos", "", "fault-injection spec, e.g. 'panic=wc-map:2,kvdrop=5' (see internal/faults)")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the fault plan and retry jitter")
	maxRetries := flag.Int("max-retries", 0, "per-instance retry budget for faulted functions (0 = default policy)")
	funcTimeout := flag.Duration("func-timeout", 0, "per-function-attempt timeout (0 = none)")
	deadline := flag.Duration("deadline", 0, "whole-invocation deadline (0 = none)")
	maxInflight := flag.Int64("max-inflight", 0, "cap on concurrently executing invocations; excess is shed with 429 (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 0, "admission queue depth; >0 upgrades -max-inflight to fair queueing instead of immediate shed")
	journalDir := flag.String("journal", "", "directory for durable-run journals; enables crash-resume (asctl runs / resume)")
	warmPools := flag.Bool("warm-pools", false, "pre-boot warm snapshot/fork pools for Python-runtime workflows")
	poolMin := flag.Int("pool-min", 1, "minimum warm instances per pool")
	poolMax := flag.Int("pool-max", 4, "maximum warm instances per pool")
	traceSample := flag.Float64("trace-sample", 0.01, "base-rate trace retention probability for ordinary runs (failed and tail runs always keep; negative = off)")
	traceSeed := flag.Int64("trace-seed", 1, "seed for the deterministic trace-sampling draw")
	sloObjective := flag.Duration("slo-objective", 0, "per-request latency objective enabling SLO burn-rate tracking (0 = off)")
	sloTarget := flag.Float64("slo-target", 0.99, "fraction of requests that must meet -slo-objective")
	captureDir := flag.String("capture-dir", "", "directory for anomaly captures (profiles + flight recorder) on SLO breach")
	flag.Parse()

	if *gw != "" {
		runGateway(*listen, strings.Split(*gw, ","), !*noCluster, *healthInterval, *shardBudget)
		return
	}

	var plan *faults.Plan
	if *chaos != "" {
		var err error
		plan, err = faults.ParseSpec(*chaos, *chaosSeed)
		if err != nil {
			fatal("bad -chaos spec: %v", err)
		}
		fmt.Printf("chaos plan active: %s\n", plan)
	}
	var retry *faults.RetryPolicy
	if *maxRetries > 0 {
		p := faults.DefaultRetryPolicy()
		p.MaxRetries = *maxRetries
		p.Seed = *chaosSeed
		retry = &p
	}

	reg := visor.NewRegistry()
	workloads.RegisterAll(reg)
	v := visor.New(reg)

	// Built-in workflows so the node is usable with no config directory.
	builtins := []*dag.Workflow{
		workloads.NoOps(),
		workloads.Pipe(1<<20, "native"),
		workloads.FunctionChain(5, 1<<20, "native"),
		workloads.WordCount(3, "native"),
		workloads.ParallelSorting(3, "native"),
	}
	for _, w := range builtins {
		if err := v.RegisterWorkflow(w); err != nil {
			fatal("register %s: %v", w.Name, err)
		}
	}
	if *dir != "" {
		entries, err := os.ReadDir(*dir)
		if err != nil {
			fatal("read workflows dir: %v", err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(*dir, e.Name()))
			if err != nil {
				fatal("read %s: %v", e.Name(), err)
			}
			w, err := dag.Parse(data)
			if err != nil {
				fatal("parse %s: %v", e.Name(), err)
			}
			if err := v.RegisterWorkflow(w); err != nil {
				fatal("register %s: %v", w.Name, err)
			}
			fmt.Printf("registered workflow %q from %s\n", w.Name, e.Name())
		}
	}

	wd := visor.NewWatchdog(v)

	// The telemetry plane is always on for a node binary: bounded
	// histograms, tail-sampled tracing and — when -slo-objective is set —
	// SLO burn-rate watching with anomaly capture.
	wd.Telemetry = visor.NewTelemetry(visor.TelemetryConfig{
		SamplerSeed: *traceSeed,
		SampleRate:  *traceSample,
		SLO: metrics.SLOConfig{
			Objective: *sloObjective,
			Target:    *sloTarget,
		},
		CaptureDir: *captureDir,
	})

	// Durable runs: every invocation write-ahead-journals its stage
	// barriers, so a crashed node can resume committed work with
	// `asctl resume` instead of re-running the workflow from scratch.
	var store *journal.Store
	if *journalDir != "" {
		var err error
		store, err = journal.Open(*journalDir, journal.Options{})
		if err != nil {
			fatal("open journal %s: %v", *journalDir, err)
		}
		wd.Journal = store
		fmt.Printf("durable runs journaled in %s\n", *journalDir)
	}

	wd.OptionsFor = func(name string) visor.RunOptions {
		ro := visor.DefaultRunOptions()
		ro.CostScale = *costScale
		if store != nil {
			ro.Durable = true
			ro.Journal = store
		}
		ro.Stdout = os.Stdout
		ro.Faults = plan
		ro.Retry = retry
		ro.FuncTimeout = *funcTimeout
		ro.Deadline = *deadline
		// Stage inputs for the workflows that read files.
		w, err := v.Workflow(name)
		if err != nil {
			return ro
		}
		needsPy := false
		for _, f := range w.Functions {
			if f.Language == "python" {
				needsPy = true
			}
		}
		for _, f := range w.Functions {
			switch f.Param("input", "") {
			case workloads.TextInputPath:
				if img, err := workloads.BuildTextImage(*inputSize, needsPy); err == nil {
					ro.DiskImage = img
				}
				return ro
			case workloads.BinInputPath:
				if img, err := workloads.BuildBinImage(*inputSize, needsPy); err == nil {
					ro.DiskImage = img
				}
				return ro
			}
		}
		if needsPy {
			if img, err := workloads.BuildEmptyImage(true); err == nil {
				ro.DiskImage = img
			}
		}
		return ro
	}

	// Admission control: a scheduler when queueing is enabled, a bare
	// shed-at-limit semaphore otherwise.
	if *maxQueue > 0 {
		mc := int(*maxInflight)
		wd.Sched = sched.New(sched.Config{MaxConcurrent: mc, MaxQueue: *maxQueue})
		defer wd.Sched.Close()
	} else if *maxInflight > 0 {
		wd.MaxInflight = *maxInflight
	}

	// Warm pools: the manager and builder are always wired so the node
	// can serve POST /pools/prewarm (the gateway's placement sweep);
	// -warm-pools additionally pre-boots a template per Python-runtime
	// workflow at startup so invocations fork from a snapshot instead of
	// cold-starting.
	mgr := pool.NewManager()
	wd.Pools = mgr
	defer mgr.StopAll()
	wd.PoolBuilder = func(w *dag.Workflow) (pool.Spec, pool.Config, bool) {
		spec, ok := workloads.PoolSpecFor(w, *inputSize, *costScale)
		return spec, pool.Config{Min: *poolMin, Max: *poolMax, Seed: *chaosSeed}, ok
	}
	if *warmPools {
		for _, name := range v.Workflows() {
			w, err := v.Workflow(name)
			if err != nil {
				continue
			}
			spec, ok := workloads.PoolSpecFor(w, *inputSize, *costScale)
			if !ok {
				continue
			}
			p, err := pool.New(spec, pool.Config{
				Min:  *poolMin,
				Max:  *poolMax,
				Seed: *chaosSeed,
			})
			if err != nil {
				fmt.Printf("warm pool %s: %v (serving cold)\n", name, err)
				continue
			}
			p.Start()
			mgr.Add(p)
			fmt.Printf("warm pool %q: %d instance(s) ready (template boot %.0f ms)\n",
				name, p.Stats().Warm, p.Stats().TemplateBoot)
		}
	}

	wd.NodeID = *nodeID
	addr, err := wd.Start(*listen)
	if err != nil {
		fatal("start watchdog: %v", err)
	}
	if *specListen != "" {
		specAddr, err := wd.StartSpecServer(*specListen)
		if err != nil {
			fatal("start spec server: %v", err)
		}
		fmt.Printf("spec server on %s (peer pre-warm pulls)\n", specAddr)
	}
	fmt.Printf("asvisor listening on http://%s (POST /invoke/{workflow})\n", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	wd.Stop()
}

// runGateway serves the cluster front end: health/membership polling
// over the backend list, rendezvous routing with pre-warm sweeps (unless
// -no-cluster), and the /invoke, /cluster and /metrics surfaces.
func runGateway(listen string, backends []string, clustered bool, interval time.Duration, shardBudget int) {
	for i := range backends {
		backends[i] = strings.TrimSpace(backends[i])
	}
	g, err := gateway.New(backends...)
	if err != nil {
		fatal("gateway: %v", err)
	}
	if clustered {
		g.Cluster = cluster.NewRouter(cluster.Config{ShardBudget: shardBudget})
	}
	g.CheckHealth()
	g.StartHealthLoop(interval)
	addr, err := g.Start(listen)
	if err != nil {
		fatal("start gateway: %v", err)
	}
	mode := "rendezvous routing"
	if !clustered {
		mode = "failover list"
	}
	fmt.Printf("asvisor gateway on http://%s (%s over %d backend(s); POST /invoke/{workflow}, GET /cluster)\n",
		addr, mode, len(backends))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	g.Stop()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "asvisor: "+format+"\n", args...)
	os.Exit(1)
}
