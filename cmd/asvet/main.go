// Command asvet is AlloyStack's project-specific static checker: a
// multichecker driving the internal/lint analyzers over the module.
// It machine-enforces the isolation and determinism invariants of the
// paper's §6 threat model on the host code (internal/scan's verifier
// covers guest images) and runs as a CI gate next to go vet.
//
// The per-package analyzers (memgate, pkrupair, senterr, wallclock,
// spanend, lockpair) check one type-checked package at a time; the
// module-scoped analyzers (trustflow, lockorder, goleak) load the whole
// module once — full bodies, dependency order, every package checked
// exactly once — and walk the interprocedural call graph.
//
// Usage:
//
//	asvet ./...                  check every package in the module
//	asvet ./internal/visor       check one package
//	asvet -run senterr,spanend ./...
//	asvet -tests=false ./...     skip _test.go analysis units
//	asvet -json ./...            one JSON diagnostic per line
//	asvet -github ./...          also emit GitHub ::error annotations
//	asvet -list                  print the analyzers and exit
//
// Exit status: 0 clean, 1 findings reported, 2 usage or load failure.
// Findings can be waived in place with
// `//asvet:allow <analyzer> -- reason`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"alloystack/internal/lint"
)

func main() {
	run := flag.String("run", "", "comma-separated analyzers to run (default all)")
	tests := flag.Bool("tests", true, "also analyze _test.go units")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "print diagnostics as JSON, one object per line")
	github := flag.Bool("github", false, "also emit GitHub Actions ::error annotations")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: asvet [-run a,b] [-tests=false] [-json] [-github] <packages>\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			scope := "package"
			if a.RunModule != nil {
				scope = "module"
			}
			fmt.Printf("%-10s [%s] %s\n", a.Name, scope, a.Doc)
		}
		return
	}
	analyzers, err := lint.ByName(*run)
	if err != nil {
		fatal("%v", err)
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal("%v", err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatal("%v", err)
	}

	var dirs []string
	for _, pattern := range flag.Args() {
		switch {
		case pattern == "./...":
			expanded, err := lint.PackageDirs(loader.ModuleRoot)
			if err != nil {
				fatal("expand %s: %v", pattern, err)
			}
			dirs = append(dirs, expanded...)
		case strings.HasSuffix(pattern, "/..."):
			expanded, err := lint.PackageDirs(strings.TrimSuffix(pattern, "/..."))
			if err != nil {
				fatal("expand %s: %v", pattern, err)
			}
			dirs = append(dirs, expanded...)
		default:
			dirs = append(dirs, pattern)
		}
	}

	needModule := false
	for _, a := range analyzers {
		if a.RunModule != nil {
			needModule = true
		}
	}

	emit := func(d lint.Diagnostic) {
		d.Pos.Filename = relPath(cwd, d.Pos.Filename)
		if *jsonOut {
			out, err := json.Marshal(struct {
				File     string `json:"file"`
				Line     int    `json:"line"`
				Col      int    `json:"col"`
				Analyzer string `json:"analyzer"`
				Message  string `json:"message"`
			}{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
			if err != nil {
				fatal("encode diagnostic: %v", err)
			}
			fmt.Println(string(out))
		} else {
			fmt.Println(d)
		}
		if *github {
			// The workflow-command format GitHub turns into PR-diff
			// annotations, same as the bench comparator's.
			fmt.Printf("::error file=%s,line=%d,col=%d,title=asvet/%s::%s\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}

	found := 0

	// Module-scoped analyzers: one whole-module load (full bodies,
	// dependency order — the load also warms the cache the per-package
	// passes below reuse), findings restricted to the requested dirs.
	if needModule {
		pkgs, err := loader.LoadModule()
		if err != nil {
			fatal("load module: %v", err)
		}
		mod := lint.NewModule(pkgs)
		inTarget := make(map[string]bool)
		for _, dir := range dirs {
			if abs, err := filepath.Abs(dir); err == nil {
				inTarget[abs] = true
			}
		}
		onlyFiles := make(map[string]bool)
		for _, pkg := range pkgs {
			if !inTarget[pkg.Dir] {
				continue
			}
			for _, name := range pkg.Filenames {
				onlyFiles[name] = true
			}
		}
		for _, d := range lint.RunModuleAnalyzers(mod, analyzers, onlyFiles) {
			emit(d)
			found++
		}
	}

	for _, dir := range dirs {
		var pkgs []*lint.Package
		var only []map[string]bool
		if *tests {
			var err error
			pkgs, only, err = loader.LoadDirUnits(dir)
			if err != nil {
				fatal("load %s: %v", dir, err)
			}
		} else {
			pkg, err := loader.LoadDir(dir, "")
			if err != nil {
				fatal("load %s: %v", dir, err)
			}
			pkgs, only = []*lint.Package{pkg}, []map[string]bool{nil}
		}
		for i, pkg := range pkgs {
			for _, d := range lint.RunAnalyzers(pkg, analyzers, only[i]) {
				emit(d)
				found++
			}
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "asvet: %d finding(s)\n", found)
		os.Exit(1)
	}
}

func relPath(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "asvet: "+format+"\n", args...)
	os.Exit(2)
}
