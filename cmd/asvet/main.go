// Command asvet is AlloyStack's project-specific static checker: a
// multichecker driving the internal/lint analyzers over the module.
// It machine-enforces the isolation and determinism invariants of the
// paper's §6 threat model on the host code (internal/scan's verifier
// covers guest images) and runs as a CI gate next to go vet.
//
// Usage:
//
//	asvet ./...                  check every package in the module
//	asvet ./internal/visor       check one package
//	asvet -run senterr,spanend ./...
//	asvet -tests=false ./...     skip _test.go analysis units
//	asvet -list                  print the analyzers and exit
//
// Exit status: 0 clean, 1 findings reported, 2 usage or load failure.
// Findings can be waived in place with
// `//asvet:allow <analyzer> -- reason`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"alloystack/internal/lint"
)

func main() {
	run := flag.String("run", "", "comma-separated analyzers to run (default all)")
	tests := flag.Bool("tests", true, "also analyze _test.go units")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: asvet [-run a,b] [-tests=false] <packages>\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := lint.ByName(*run)
	if err != nil {
		fatal("%v", err)
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal("%v", err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatal("%v", err)
	}

	var dirs []string
	for _, pattern := range flag.Args() {
		switch {
		case pattern == "./...":
			expanded, err := lint.PackageDirs(loader.ModuleRoot)
			if err != nil {
				fatal("expand %s: %v", pattern, err)
			}
			dirs = append(dirs, expanded...)
		case strings.HasSuffix(pattern, "/..."):
			expanded, err := lint.PackageDirs(strings.TrimSuffix(pattern, "/..."))
			if err != nil {
				fatal("expand %s: %v", pattern, err)
			}
			dirs = append(dirs, expanded...)
		default:
			dirs = append(dirs, pattern)
		}
	}

	found := 0
	for _, dir := range dirs {
		var pkgs []*lint.Package
		var only []map[string]bool
		if *tests {
			var err error
			pkgs, only, err = loader.LoadDirUnits(dir)
			if err != nil {
				fatal("load %s: %v", dir, err)
			}
		} else {
			pkg, err := loader.LoadDir(dir, "")
			if err != nil {
				fatal("load %s: %v", dir, err)
			}
			pkgs, only = []*lint.Package{pkg}, []map[string]bool{nil}
		}
		for i, pkg := range pkgs {
			for _, d := range lint.RunAnalyzers(pkg, analyzers, only[i]) {
				d.Pos.Filename = relPath(cwd, d.Pos.Filename)
				fmt.Println(d)
				found++
			}
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "asvet: %d finding(s)\n", found)
		os.Exit(1)
	}
}

func relPath(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "asvet: "+format+"\n", args...)
	os.Exit(2)
}
