#!/bin/sh
# CI entry point: formatting gate, build, vet, the full test suite, then
# the fault-tolerance and data-plane packages again under the race
# detector. The chaos soak test only runs in the final (non -short) race
# pass, so a quick local loop is `go test -short ./...`.
set -eux

test -z "$(gofmt -l .)"
go build ./...
go vet ./...
go test -short ./...
go test -race -count=1 \
	./internal/faults \
	./internal/visor \
	./internal/gateway \
	./internal/kvstore \
	./internal/metrics \
	./internal/xfer \
	./internal/integration
