#!/bin/sh
# CI entry point: formatting gate, build, vet (stock + the repo's own
# asvet analyzers), the full test suite, then every internal package
# again under the race detector. The chaos soak test only runs in the
# final (non -short) race pass, so a quick local loop is
# `go test -short ./...`. The traced demo run doubles as an end-to-end
# smoke test and leaves trace.json behind for CI to upload as an
# artifact.
set -eux

test -z "$(gofmt -l .)"
go build ./...
go vet ./...
# Under GitHub Actions, -github makes every finding a ::error workflow
# command so it lands as an inline PR-diff annotation.
if [ -n "${GITHUB_ACTIONS:-}" ]; then
	go run ./cmd/asvet -github ./...
else
	go run ./cmd/asvet ./...
fi
go test -short ./...
# The ./internal/... wildcard includes internal/cluster and the
# gateway's cluster plane: rendezvous routing, membership, shard
# admission and the pre-warm protocol all re-run under -race here.
go test -race -count=1 ./internal/...
go run ./examples/tracedemo -o trace.json
# Perf regression gate: run the cheap experiment subset (includes the
# coldstart, crash-resume and cluster arms), record typed BENCH_*.json
# results, and diff them against the committed baselines with
# direction-aware noise bands. Journals + spill segments +
# flight-recorder dumps stay in journal-artifacts/ so a failed run can
# be replayed offline; the recorded results and the rendered report are
# uploaded as artifacts.
# No `| tee` here — a pipe would let the pipeline's exit status mask the
# comparator's verdict under plain sh.
bench_status=0
go run ./cmd/asbench -exp cheap -scale 0.01 \
	-record bench-results -compare benchmarks/baselines \
	-band 1 -floor-ms 10 \
	-artifacts journal-artifacts > bench-report.txt 2>&1 || bench_status=$?
cat bench-report.txt
# The cluster scale curve (nodes vs p50/p99/warm-hit/ring-stability) is
# carved out of the report as its own artifact for the PR summary.
sed -n '/^== cluster:/,/^$/p' bench-report.txt > cluster-scale-curve.txt || true
exit $bench_status
