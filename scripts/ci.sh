#!/bin/sh
# CI entry point: formatting gate, build, vet, the full test suite, then
# the fault-tolerance, data-plane and observability packages again under
# the race detector. The chaos soak test only runs in the final (non
# -short) race pass, so a quick local loop is `go test -short ./...`.
# The traced demo run doubles as an end-to-end smoke test and leaves
# trace.json behind for CI to upload as an artifact.
set -eux

test -z "$(gofmt -l .)"
go build ./...
go vet ./...
go test -short ./...
go test -race -count=1 \
	./internal/faults \
	./internal/visor \
	./internal/gateway \
	./internal/kvstore \
	./internal/metrics \
	./internal/trace \
	./internal/xfer \
	./internal/pool \
	./internal/sched \
	./internal/integration
go run ./examples/tracedemo -o trace.json
go run ./cmd/asbench -exp coldstart -scale 0.01 | tee coldstart.txt
