#!/bin/sh
# CI entry point: formatting gate, build, vet (stock + the repo's own
# asvet analyzers), the full test suite, then every internal package
# again under the race detector. The chaos soak test only runs in the
# final (non -short) race pass, so a quick local loop is
# `go test -short ./...`. The traced demo run doubles as an end-to-end
# smoke test and leaves trace.json behind for CI to upload as an
# artifact.
set -eux

test -z "$(gofmt -l .)"
go build ./...
go vet ./...
go run ./cmd/asvet ./...
go test -short ./...
go test -race -count=1 ./internal/...
go run ./examples/tracedemo -o trace.json
go run ./cmd/asbench -exp coldstart -scale 0.01 | tee coldstart.txt
# Durability: crash a run at a seeded point, resume it from the journal,
# and keep the journals + spill segments + flight-recorder dumps as a CI
# artifact so a failed run can be replayed offline.
go run ./cmd/asbench -exp crashresume -artifacts journal-artifacts | tee crashresume.txt
