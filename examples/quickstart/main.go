// Quickstart: the paper's Figure 8 demo on the public API.
//
// Two functions share one WorkFlow Domain. func_a creates an AsBuffer
// under the slot "Conference" and writes typed data into it; func_b
// obtains the same buffer by slot and reads the data — no copy, the
// reference crosses functions through the WFD's single address space.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"os"

	"alloystack/internal/asstd"
	"alloystack/internal/core"
)

// MyFuncData mirrors the paper's derive(FaasData) struct.
type MyFuncData struct {
	Name string
	Year uint64
}

// MarshalFaas implements asstd.Marshaler.
func (d MyFuncData) MarshalFaas() ([]byte, error) {
	out := append([]byte(d.Name), 0)
	var year [8]byte
	binary.LittleEndian.PutUint64(year[:], d.Year)
	return append(out, year[:]...), nil
}

// UnmarshalFaas implements asstd.Unmarshaler.
func (d *MyFuncData) UnmarshalFaas(b []byte) error {
	i := bytes.IndexByte(b, 0)
	if i < 0 || len(b) < i+9 {
		return errors.New("bad MyFuncData encoding")
	}
	d.Name = string(b[:i])
	d.Year = binary.LittleEndian.Uint64(b[i+1 : i+9])
	return nil
}

func main() {
	// The visor instantiates one WFD per workflow invocation; nothing is
	// loaded yet — modules come in on demand at first use.
	wfd, err := core.Instantiate(core.Options{
		OnDemand:    true,
		CostScale:   1.0,
		BufHeapSize: 64 << 20,
		Stdout:      os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer wfd.Destroy()
	fmt.Printf("WFD cold start: %s (no as-libos modules loaded yet: %d)\n",
		wfd.ColdStart, len(wfd.NS.LoadedModules()))

	// Data sender (paper's func_a).
	err = wfd.Run("func_a", func(env *asstd.Env) error {
		return asstd.SendValue(env, "Conference", MyFuncData{Name: "Euro", Year: 2025})
	})
	if err != nil {
		log.Fatal(err)
	}

	// Data receiver (paper's func_b).
	err = wfd.Run("func_b", func(env *asstd.Env) error {
		data, err := asstd.RecvValue[MyFuncData](env, "Conference")
		if err != nil {
			return err
		}
		return asstd.Printf(env, "%sSys, %d\n", data.Name, data.Year) // "EuroSys, 2025"
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("modules loaded on demand: %v\n", wfd.NS.LoadedModules())
}
