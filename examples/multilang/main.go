// Multilang: the same pipe workflow in all three language tiers —
// native (≈Rust), C (ASVM AOT behind the WASI adaptation layer) and
// Python (interpreted bytecode behind a runtime-image load) — showing
// the multi-language support of §7.2 and the relative costs of each tier.
//
//	go run ./examples/multilang
package main

import (
	"fmt"
	"log"

	"alloystack/internal/visor"
	"alloystack/internal/workloads"
)

func main() {
	reg := visor.NewRegistry()
	workloads.RegisterAll(reg)
	v := visor.New(reg)

	const size = 1 << 20
	for _, lang := range []string{"native", "c", "python"} {
		w := workloads.Pipe(size, lang)
		ro := visor.DefaultRunOptions()
		if lang == "python" {
			img, err := workloads.BuildEmptyImage(true)
			if err != nil {
				log.Fatal(err)
			}
			ro.DiskImage = img
		}
		res, err := v.RunWorkflow(w, ro)
		if err != nil {
			log.Fatalf("%s tier: %v", lang, err)
		}
		fmt.Printf("%-7s pipe %dKB: e2e=%-12s cold-start=%s\n",
			lang, size>>10, res.E2E, res.ColdStart)
	}
	fmt.Println("\nnative uses zero-copy AsBuffer references; the guest tiers copy")
	fmt.Println("through the WASI boundary, and Python pays the runtime-image read.")
}
