// Sagademo: durable workflow runs on the public API — write-ahead
// journaling at stage barriers, crash-resume, and saga compensation.
//
//	go run ./examples/sagademo
//
// A three-stage trip-booking workflow (book-flight -> book-hotel ->
// charge) runs three times against one journal directory:
//
//  1. happy path: every barrier is journaled, the run seals "ok"
//
//  2. terminal failure: charge declines, so the committed bookings
//     unwind in reverse order through their compensation handlers
//     and the run seals "compensated"
//
//  3. crash + resume: a seeded crashpoint kills the run after the
//     flight is committed; the resume replays the journal, skips the
//     committed stage (the flight is NOT booked twice) and finishes
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"os"

	"alloystack/internal/asstd"
	"alloystack/internal/dag"
	"alloystack/internal/faults"
	"alloystack/internal/journal"
	"alloystack/internal/visor"
)

// tripWorkflow books a flight and a hotel, then charges the card. The
// two bookings declare compensation handlers; charge is the pivot — if
// it fails there is nothing to undo downstream, only upstream.
func tripWorkflow() *dag.Workflow {
	return &dag.Workflow{
		Name: "trip",
		Functions: []dag.FuncSpec{
			{Name: "book-flight", Compensate: "cancel-flight"},
			{Name: "book-hotel", DependsOn: []string{"book-flight"}, Compensate: "cancel-hotel"},
			{Name: "charge", DependsOn: []string{"book-hotel"}},
		},
		Compensations: []dag.FuncSpec{
			{Name: "cancel-flight"},
			{Name: "cancel-hotel"},
		},
	}
}

// tripRegistry wires the five handlers. The booking counters are
// host-side state standing in for external side effects (a reservation
// in someone else's database) — exactly what a resume must not repeat
// and a saga must undo.
func tripRegistry(booked map[string]int, declineCharge bool) *visor.Registry {
	r := visor.NewRegistry()
	confirm := func(fn, next string) func(*asstd.Env, visor.FuncContext) error {
		return func(env *asstd.Env, ctx visor.FuncContext) error {
			booked[fn]++
			out, err := asstd.NewBuffer(env, visor.Slot(fn, 0, next, 0), 8)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(out.Bytes(), uint64(booked[fn]))
			return nil
		}
	}
	r.RegisterNative("book-flight", confirm("book-flight", "book-hotel"))
	r.RegisterNative("book-hotel", confirm("book-hotel", "charge"))
	r.RegisterNative("charge", func(env *asstd.Env, ctx visor.FuncContext) error {
		if declineCharge {
			return errors.New("card declined")
		}
		return nil
	})
	r.RegisterNative("cancel-flight", func(env *asstd.Env, ctx visor.FuncContext) error {
		booked["book-flight"]--
		return nil
	})
	r.RegisterNative("cancel-hotel", func(env *asstd.Env, ctx visor.FuncContext) error {
		booked["book-hotel"]--
		return nil
	})
	return r
}

func durableOpts(store *journal.Store) visor.RunOptions {
	ro := visor.DefaultRunOptions()
	ro.Durable = true
	ro.Journal = store
	ro.Stdout = os.Stdout
	return ro
}

func main() {
	dir, err := os.MkdirTemp("", "sagademo-journal-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := journal.Open(dir, journal.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Act 1: happy path. Every stage barrier appends a group-committed
	// record; the sealed journal is the run's durable history.
	booked := map[string]int{}
	v := visor.New(tripRegistry(booked, false))
	res, err := v.RunWorkflow(tripWorkflow(), durableOpts(store))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("act 1 — happy path: verdict=%q flight=%d hotel=%d\n",
		res.Verdict, booked["book-flight"], booked["book-hotel"])

	// Act 2: terminal failure at the pivot. The journal knows exactly
	// which stages committed, so the saga unwinds them — and only them —
	// in reverse order, journaling each compensation's idempotency key.
	booked = map[string]int{}
	v = visor.New(tripRegistry(booked, true))
	res, err = v.RunWorkflow(tripWorkflow(), durableOpts(store))
	if err == nil {
		log.Fatal("charge unexpectedly succeeded")
	}
	fmt.Printf("act 2 — card declined: verdict=%q compensations=%d flight=%d hotel=%d (all undone)\n",
		res.Verdict, res.Compensations, booked["book-flight"], booked["book-hotel"])

	// Act 3: crash after the flight's barrier commit — the journal is
	// left unsealed, as a killed visor process would leave it.
	booked = map[string]int{}
	v = visor.New(tripRegistry(booked, false))
	co := durableOpts(store)
	co.Faults = faults.NewPlan(1, faults.Crash{Point: "after-commit:0"})
	cres, cerr := v.RunWorkflow(tripWorkflow(), co)
	if !errors.Is(cerr, visor.ErrCrashPoint) {
		log.Fatalf("expected crashpoint, got %v", cerr)
	}
	fmt.Printf("act 3 — crashed after flight commit: run %s, flight booked %d time(s)\n",
		cres.RunID, booked["book-flight"])

	// Resume from the journal: the committed flight stage is skipped
	// (its spilled barrier outputs are re-imported), so the external
	// booking happens exactly once despite the crash.
	ro := durableOpts(store)
	ro.Resume = cres.RunID
	rres, err := v.RunWorkflow(tripWorkflow(), ro)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("          resumed: verdict=%q skipped=%d flight=%d hotel=%d (flight not re-booked)\n",
		rres.Verdict, rres.StagesSkipped, booked["book-flight"], booked["book-hotel"])

	st, err := store.Load(cres.RunID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("journal: %d/%d stages committed, sealed=%v, %d resume(s) recorded\n",
		st.CommittedPrefix(), len(tripWorkflow().Functions), st.Sealed, st.Resumes)
}
