// Image-metadata pipeline: the Table 1 workflow (extract-image-metadata →
// transform-metadata → store-image-metadata) on the public API,
// demonstrating on-demand module loading across a realistic DAG: the
// first function pulls in time/fdtab/fatfs/socket; the later ones reuse
// every module the first one loaded.
//
//	go run ./examples/imagepipeline
package main

import (
	"fmt"
	"log"
	"os"

	"alloystack/internal/asstd"
	"alloystack/internal/blockdev"
	"alloystack/internal/dag"
	"alloystack/internal/fatfs"
	"alloystack/internal/netstack"
	"alloystack/internal/visor"
)

func main() {
	reg := visor.NewRegistry()

	// extract-image-metadata: read the image from the WFD filesystem,
	// "parse" its header, pass metadata downstream by reference.
	reg.RegisterNative("extract", func(env *asstd.Env, ctx visor.FuncContext) error {
		if err := asstd.MountFS(env); err != nil {
			return err
		}
		img, err := asstd.ReadFile(env, "/PHOTO.BIN")
		if err != nil {
			return err
		}
		meta := fmt.Sprintf(`{"bytes":%d,"magic":"%x"}`, len(img), img[:4])
		b, err := asstd.NewBuffer(env, "extract->transform", uint64(len(meta)))
		if err != nil {
			return err
		}
		copy(b.Bytes(), meta)
		return nil
	})

	// transform-metadata: enrich the JSON with a timestamp.
	reg.RegisterNative("transform", func(env *asstd.Env, ctx visor.FuncContext) error {
		in, err := asstd.FromSlot(env, "extract->transform")
		if err != nil {
			return err
		}
		now, err := asstd.Now(env)
		if err != nil {
			return err
		}
		enriched := fmt.Sprintf(`{"meta":%s,"at":%d}`, in.Bytes(), now.UnixMicro())
		in.Free()
		out, err := asstd.NewBuffer(env, "transform->store", uint64(len(enriched)))
		if err != nil {
			return err
		}
		copy(out.Bytes(), enriched)
		return nil
	})

	// store-image-metadata: ship the record to the metadata "database"
	// over the WFD's userspace TCP stack.
	reg.RegisterNative("store", func(env *asstd.Env, ctx visor.FuncContext) error {
		in, err := asstd.FromSlot(env, "transform->store")
		if err != nil {
			return err
		}
		defer in.Free()
		conn, err := asstd.Connect(env, netstack.Endpoint{
			Addr: netstack.IP(10, 0, 0, 100), Port: 5432,
		})
		if err != nil {
			return err
		}
		defer conn.Close()
		if _, err := conn.Write(in.Bytes()); err != nil {
			return err
		}
		ack := make([]byte, 2)
		if _, err := conn.Read(ack); err != nil {
			return err
		}
		return asstd.Printf(env, "stored metadata, db replied %q\n", ack)
	})

	// Stage the WFD's disk image with the input photo.
	disk := blockdev.NewMemDisk(16 << 20)
	fs, err := fatfs.Format(disk, fatfs.MkfsOptions{})
	if err != nil {
		log.Fatal(err)
	}
	photo := append([]byte{0x89, 'P', 'N', 'G'}, make([]byte, 512*1024)...)
	if err := fs.WriteFile("PHOTO.BIN", photo); err != nil {
		log.Fatal(err)
	}

	// A "database" listening on the virtual network.
	hub := netstack.NewHub()
	dbNIC, err := hub.Attach(netstack.IP(10, 0, 0, 100))
	if err != nil {
		log.Fatal(err)
	}
	db := netstack.NewStack(dbNIC)
	defer db.Close()
	ln, err := db.Listen(5432)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c *netstack.Conn) {
				buf := make([]byte, 64*1024)
				n, _ := c.Read(buf)
				fmt.Printf("db received %d bytes: %s\n", n, buf[:n])
				c.Write([]byte("OK"))
				c.Close()
			}(c)
		}
	}()

	v := visor.New(reg)
	w := &dag.Workflow{
		Name: "image-metadata",
		Functions: []dag.FuncSpec{
			{Name: "extract"},
			{Name: "transform", DependsOn: []string{"extract"}},
			{Name: "store", DependsOn: []string{"transform"}},
		},
	}
	ro := visor.DefaultRunOptions()
	ro.DiskImage = disk
	ro.Hub = hub
	ro.IP = netstack.IP(10, 0, 0, 1)
	ro.Stdout = os.Stdout

	res, err := v.RunWorkflow(w, ro)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline done: e2e=%s cold-start=%s\n", res.E2E, res.ColdStart)
}
