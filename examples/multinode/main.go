// Multinode: the paper's §9 distributed setting. A workflow too large
// for one node is cut at a stage boundary into two subgraph workflows;
// each runs in its own WFD on its own node, and the intermediate data
// crossing the cut travels by traditional transfer — here a Redis-like
// store over real TCP, the same path the OpenFaaS baseline uses for
// every single edge.
//
//	go run ./examples/multinode
package main

import (
	"fmt"
	"log"
	"os"

	"alloystack/internal/kvstore"
	"alloystack/internal/visor"
	"alloystack/internal/workloads"
)

func main() {
	// A 10-link FunctionChain, cut in the middle.
	const length, size, cut = 10, 1 << 20, 5
	whole := workloads.FunctionChain(length, size, "native")
	front, back, err := visor.SplitAt(whole, cut)
	if err != nil {
		log.Fatal(err)
	}
	cross, err := visor.CrossSlots(whole, cut)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cut %q at stage %d: %d + %d functions, %d crossing slot(s)\n",
		whole.Name, cut, len(front.Functions), len(back.Functions), len(cross))

	// Two independent nodes (registries, visors — in production these
	// are separate machines behind the gateway).
	reg1 := visor.NewRegistry()
	workloads.RegisterAll(reg1)
	node1 := visor.New(reg1)
	reg2 := visor.NewRegistry()
	workloads.RegisterAll(reg2)
	node2 := visor.New(reg2)

	// The cross-node transport: a real TCP key-value store.
	store, err := kvstore.NewServer("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Node 1: run the front half, export the boundary slots.
	ro1 := visor.DefaultRunOptions()
	ro1.ExportSlots = cross
	res1, err := node1.RunWorkflow(front, ro1)
	if err != nil {
		log.Fatal(err)
	}
	cli, err := kvstore.Dial(store.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	var moved int
	for slot, data := range res1.Exports {
		if err := cli.Set(slot, data); err != nil {
			log.Fatal(err)
		}
		moved += len(data)
	}
	fmt.Printf("node1 done in %s; moved %d bytes across nodes via TCP store\n",
		res1.E2E, moved)

	// Node 2: import the boundary slots, run the back half.
	imported := map[string][]byte{}
	for _, slot := range cross {
		if data, err := cli.Get(slot); err == nil {
			imported[slot] = data
		}
	}
	ro2 := visor.DefaultRunOptions()
	ro2.ImportSlots = imported
	ro2.Stdout = os.Stdout
	res2, err := node2.RunWorkflow(back, ro2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node2 done in %s; chain completed across two WFDs on two nodes\n", res2.E2E)
}
