// MapReduce: the WordCount benchmark (vSwarm-style) on the public API —
// fan-out over AsBuffer slots, a hash-partitioned shuffle, and fan-in,
// all inside one WorkFlow Domain.
//
//	go run ./examples/mapreduce
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"alloystack/internal/visor"
	"alloystack/internal/workloads"
)

func main() {
	reg := visor.NewRegistry()
	workloads.RegisterAll(reg)
	v := visor.New(reg)

	const inputSize = 8 << 20
	const mappers = 4

	img, err := workloads.BuildTextImage(inputSize, false)
	if err != nil {
		log.Fatal(err)
	}

	w := workloads.WordCount(mappers, "native")
	ro := visor.DefaultRunOptions()
	ro.DiskImage = img
	ro.Stdout = os.Stdout

	start := time.Now()
	res, err := v.RunWorkflow(w, ro)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wordcount over %d MiB with %d mappers/reducers: e2e=%s (measured %s)\n",
		inputSize>>20, mappers, res.E2E, time.Since(start).Round(time.Millisecond))
	fmt.Printf("stage breakdown: %v\n", res.Clock.Breakdown())
}
