// Tracedemo: run a fan-out/fan-in pipeline with span tracing enabled
// and export the Chrome trace_event JSON.
//
// The produced file loads directly in Perfetto (https://ui.perfetto.dev)
// or chrome://tracing: one process row for the visor, one lane per
// function instance, phase spans for the Figure-15 breakdown
// (read-input/compute/transfer) and a transfer span per data-plane edge.
//
//	go run ./examples/tracedemo -o trace.json -instances 4
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"alloystack/internal/asstd"
	"alloystack/internal/dag"
	"alloystack/internal/metrics"
	"alloystack/internal/trace"
	"alloystack/internal/visor"
)

func registry(instances int) *visor.Registry {
	r := visor.NewRegistry()

	// produce writes one 64 KiB block per worker through the data plane.
	r.RegisterNative("produce", func(env *asstd.Env, ctx visor.FuncContext) error {
		return env.TimeStage(metrics.StageTransfer, func() error {
			for i := 0; i < instances; i++ {
				block := make([]byte, 64<<10)
				binary.LittleEndian.PutUint64(block, uint64(i+1))
				if err := env.Transport().Send(visor.Slot("produce", 0, "work", i), block); err != nil {
					return err
				}
			}
			return nil
		})
	})

	// work reads its block, burns a little compute, ships a digest on.
	r.RegisterNative("work", func(env *asstd.Env, ctx visor.FuncContext) error {
		var sum uint64
		err := env.TimeStage(metrics.StageReadInput, func() error {
			data, release, err := env.Transport().Recv(visor.Slot("produce", 0, "work", ctx.Instance))
			if err != nil {
				return err
			}
			defer release()
			sum = binary.LittleEndian.Uint64(data)
			return nil
		})
		if err != nil {
			return err
		}
		if err := env.TimeStage(metrics.StageCompute, func() error {
			for i := 0; i < 1<<20; i++ {
				sum = sum*1103515245 + 12345
			}
			time.Sleep(time.Duration(1+ctx.Instance) * time.Millisecond)
			return nil
		}); err != nil {
			return err
		}
		return env.TimeStage(metrics.StageTransfer, func() error {
			out := make([]byte, 8)
			binary.LittleEndian.PutUint64(out, sum)
			return env.Transport().Send(visor.Slot("work", ctx.Instance, "merge", 0), out)
		})
	})

	// merge fans the digests back in.
	r.RegisterNative("merge", func(env *asstd.Env, ctx visor.FuncContext) error {
		var total uint64
		err := env.TimeStage(metrics.StageReadInput, func() error {
			for i := 0; i < instances; i++ {
				data, release, err := env.Transport().Recv(visor.Slot("work", i, "merge", 0))
				if err != nil {
					return err
				}
				total += binary.LittleEndian.Uint64(data)
				release()
			}
			return nil
		})
		if err != nil {
			return err
		}
		return asstd.Printf(env, "merged=%d", total)
	})
	return r
}

func main() {
	out := flag.String("o", "trace.json", "output file for the Chrome trace")
	instances := flag.Int("instances", 4, "parallel work instances")
	syscalls := flag.Bool("syscalls", false, "record per-LibOS-crossing spans (verbose)")
	flag.Parse()

	tracer := trace.New("visor", trace.Options{
		Syscalls: *syscalls,
		Recorder: trace.NewRecorder(trace.DefaultRecorderSize),
	})

	w := &dag.Workflow{Name: "trace-demo", Functions: []dag.FuncSpec{
		{Name: "produce"},
		{Name: "work", DependsOn: []string{"produce"}, Instances: *instances},
		{Name: "merge", DependsOn: []string{"work"}},
	}}
	opts := visor.DefaultRunOptions()
	opts.BufHeapSize = 64 << 20
	opts.Stdout = os.Stdout
	opts.Trace = tracer

	v := visor.New(registry(*instances))
	res, err := v.RunWorkflow(w, opts)
	fmt.Println()
	if err != nil {
		log.Fatalf("tracedemo: %v", err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.ExportChrome(f, tracer); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trace %s: e2e %s, cold start %s, %d spans\n",
		res.TraceID, res.E2E.Round(time.Microsecond),
		res.ColdStart.Round(time.Microsecond), len(tracer.Spans()))
	totals := tracer.PhaseTotals()
	names := make([]string, 0, len(totals))
	for name := range totals {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("phase totals (trace == stage clock):")
	for _, name := range names {
		fmt.Printf("  %-10s %12s\n", name, totals[name].Round(time.Microsecond))
	}
	fmt.Println("transfer:")
	fmt.Printf("  %s\n", res.Transfer)
	fmt.Printf("wrote %s — load it at https://ui.perfetto.dev or chrome://tracing\n", *out)
}
