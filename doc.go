// Package alloystack is a from-scratch Go reproduction of "AlloyStack:
// A Library Operating System for Serverless Workflow Applications"
// (EuroSys 2025).
//
// The root package holds only the evaluation benchmark suite
// (bench_test.go); the system lives under internal/ and the runnable
// entry points under cmd/ and examples/. Start with README.md for usage,
// DESIGN.md for the system inventory and reproduction substitutions, and
// EXPERIMENTS.md for paper-vs-measured results.
package alloystack
