module alloystack

go 1.22
